package worker

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"
)

// SlotIdentity describes what currently backs one pool slot: a subprocess
// spawned over pipes, or a leased network connection to a remote agent.
type SlotIdentity struct {
	// Remote distinguishes network-attached workers from local subprocesses.
	Remote bool
	// PID is the subprocess id (local slots only).
	PID int
	// Addr, Lease, and Epoch identify the connection (remote slots only):
	// the agent address, the fencing lease the driver minted for this
	// attachment, and the slot's reconnect epoch.
	Addr  string
	Lease uint64
	Epoch int
	// Name is the agent's self-reported identity from the welcome frame.
	Name string
}

// String renders the stable identity form used in stats, events, and tests:
// "local:<pid>" or "remote:<addr>#<lease>".
func (id SlotIdentity) String() string {
	if id.Remote {
		return fmt.Sprintf("remote:%s#%d", id.Addr, id.Lease)
	}
	return fmt.Sprintf("local:%d", id.PID)
}

// Conn is one live worker attachment being driven by the supervision loop.
// Both transports satisfy it, so heartbeat liveness, crash detection,
// restart budgets, speculation, and CrashLimit apply identically to a
// subprocess over pipes and an agent over TCP.
type Conn interface {
	// Send writes one frame; an error means the peer is lost.
	Send(Message) error
	// Msgs yields inbound frames and is closed when the peer is gone.
	Msgs() <-chan Message
	// Stale reports no proof of life (no valid frame) within timeout.
	Stale(timeout time.Duration) bool
	// Kill force-terminates the attachment: SIGKILL for a subprocess,
	// connection close for a network peer (the agent process survives).
	Kill()
	// EnsureDead kills and waits until the attachment is fully reaped.
	EnsureDead()
	// Shutdown asks the worker to finish cleanly, escalating to Kill.
	Shutdown()
	// WaitResult reports the terminal error (meaningful after Msgs closed).
	WaitResult() error
	// Identity reports what backs the slot right now.
	Identity() SlotIdentity
}

// Transport establishes worker attachments for pool slots. Connect blocks
// until the worker is attached (process started and pumping, or connection
// handshaken) but not until it is ready — the pool waits for the ready
// frame itself, under StartTimeout, for both transports. started reports
// whether a process/connection ever came up: false means the endpoint is
// entirely unavailable, the pool's fast-degradation signal. cancel aborts a
// connect attempt when the pool closes.
type Transport interface {
	Connect(workerID, incarnation int, cancel <-chan struct{}) (conn Conn, started bool, err error)
	// Kind is a short label for logs: "pipe" or "tcp".
	Kind() string
}

// PipeTransport spawns worker subprocesses and attaches to them over
// stdin/stdout — the original single-machine transport.
type PipeTransport struct {
	// Command builds the exec.Cmd for one worker process (see
	// PoolOptions.Command).
	Command func(workerID, incarnation int) *exec.Cmd
}

// Kind implements Transport.
func (t *PipeTransport) Kind() string { return "pipe" }

// Connect implements Transport: start the subprocess and its frame pump.
func (t *PipeTransport) Connect(workerID, incarnation int, cancel <-chan struct{}) (Conn, bool, error) {
	if t.Command == nil {
		return nil, false, errors.New("worker: PipeTransport needs a Command")
	}
	cmd := t.Command(workerID, incarnation)
	if cmd == nil {
		return nil, false, errors.New("worker: Command returned nil")
	}
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, false, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, false, err
	}
	if err := cmd.Start(); err != nil {
		return nil, false, fmt.Errorf("worker: starting %q: %w", cmd.Path, err)
	}
	w := &proc{
		cmd: cmd, stdin: stdin, fw: newFrameWriter(stdin),
		msgs: make(chan Message, 64), dying: make(chan struct{}), done: make(chan struct{}),
	}
	w.lastBeat.Store(time.Now().UnixNano())
	go func() {
		r := newFrameReader(stdout)
		for {
			m, err := r.next()
			if err != nil {
				break
			}
			w.lastBeat.Store(time.Now().UnixNano())
			select {
			case w.msgs <- m:
			case <-w.dying:
				// Consumer gone; keep draining so the pipe reaches EOF.
			}
		}
		close(w.msgs)
		w.waitErr = cmd.Wait()
		close(w.done)
	}()
	return w, true, nil
}

// proc wraps one live worker subprocess: its pipes, its message pump, and
// its lifecycle.
type proc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	fw    *frameWriter
	msgs  chan Message // closed when the pump sees EOF
	dying chan struct{}
	done  chan struct{} // closed once the process is reaped

	lastBeat atomic.Int64 // unix nanos of the last frame seen
	killOnce sync.Once
	waitErr  error
}

func (w *proc) Send(m Message) error { return w.fw.send(m) }

func (w *proc) Msgs() <-chan Message { return w.msgs }

func (w *proc) Identity() SlotIdentity {
	return SlotIdentity{PID: w.cmd.Process.Pid}
}

func (w *proc) Stale(timeout time.Duration) bool {
	return time.Since(time.Unix(0, w.lastBeat.Load())) > timeout
}

// Kill SIGKILLs the process and tells the pump its consumer may be gone.
func (w *proc) Kill() {
	w.killOnce.Do(func() { close(w.dying) })
	_ = w.cmd.Process.Kill()
}

// EnsureDead guarantees the process is gone and reaped.
func (w *proc) EnsureDead() {
	w.Kill()
	<-w.done
}

// Shutdown asks the worker to exit cleanly, escalating to SIGKILL.
func (w *proc) Shutdown() {
	_ = w.Send(Message{Type: MsgShutdown})
	_ = w.stdin.Close()
	select {
	case <-w.done:
	case <-time.After(2 * time.Second):
		w.EnsureDead()
	}
}

// WaitResult reports the reaped process's exit error (only meaningful after
// msgs has closed).
func (w *proc) WaitResult() error {
	<-w.done
	if w.waitErr == nil {
		return errors.New("clean exit")
	}
	return w.waitErr
}

// netWriteTimeout bounds one frame write to a network peer, so a driver
// never wedges on a half-dead connection whose receive window filled up;
// the frames are tiny, so a healthy peer acknowledges far sooner.
const netWriteTimeout = 30 * time.Second

// DialTransport attaches pool slots to remote worker agents over TCP (see
// ServeListener for the agent side). Each slot dials Addrs[slot mod
// len(Addrs)], so a pool spreads its slots round-robin over the fleet. Every
// connection opens with a versioned hello/welcome handshake that fences the
// attachment with a lease (LeaseID of Seed, slot, and the reconnect epoch):
// the agent echoes the lease in every frame, and the driver discards frames
// carrying any other lease, so a zombie worker from a superseded connection
// can never deliver a result. Connection loss is handled by the pool's
// ordinary supervision: seeded-backoff reconnect (a fresh epoch, a fresh
// lease) and re-dispatch of whatever was in flight.
type DialTransport struct {
	// Addrs are the agent addresses ("host:port"); at least one.
	Addrs []string
	// DialTimeout bounds one TCP connect attempt (default 5s).
	DialTimeout time.Duration
	// HandshakeTimeout bounds the hello/welcome exchange (default 10s).
	HandshakeTimeout time.Duration
	// ReadTimeout, when positive, is a per-read deadline on the live
	// connection — a transport-level dead-peer bound underneath the
	// application-level heartbeat liveness check. It must exceed the pool's
	// heartbeat timeout or healthy idle links get cut. 0 disables it.
	ReadTimeout time.Duration
	// Seed derives the deterministic lease IDs.
	Seed uint64
}

func (t *DialTransport) dialTimeout() time.Duration {
	if t.DialTimeout > 0 {
		return t.DialTimeout
	}
	return 5 * time.Second
}

func (t *DialTransport) handshakeTimeout() time.Duration {
	if t.HandshakeTimeout > 0 {
		return t.HandshakeTimeout
	}
	return 10 * time.Second
}

// Kind implements Transport.
func (t *DialTransport) Kind() string { return "tcp" }

// Connect implements Transport: dial, handshake, lease, pump.
func (t *DialTransport) Connect(workerID, incarnation int, cancel <-chan struct{}) (Conn, bool, error) {
	if len(t.Addrs) == 0 {
		return nil, false, errors.New("worker: DialTransport has no agent addresses")
	}
	addr := t.Addrs[workerID%len(t.Addrs)]
	ctx, stop := context.WithTimeout(context.Background(), t.dialTimeout())
	defer stop()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-cancel:
			stop()
		case <-watchDone:
		}
	}()
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		// A refused or timed-out dial means the endpoint is unavailable —
		// started=false, the fast-degradation signal, mirroring a worker
		// binary that cannot even start.
		return nil, false, fmt.Errorf("worker: dial %s: %w", addr, err)
	}
	lease := LeaseID(t.Seed, workerID, incarnation)
	fw := newFrameWriter(c)
	dr := &deadlineReader{c: c}
	r := newFrameReader(dr)
	_ = c.SetDeadline(time.Now().Add(t.handshakeTimeout()))
	hello := Message{Type: MsgHello, Schema: ProtoSchema, Lease: lease, Epoch: incarnation, Caps: []string{CapEval, CapTrace}}
	if err := fw.send(hello); err != nil {
		_ = c.Close()
		return nil, true, fmt.Errorf("worker: handshake with %s: sending hello: %w", addr, err)
	}
	m, err := r.next()
	if err != nil {
		_ = c.Close()
		return nil, true, fmt.Errorf("worker: handshake with %s: %w", addr, err)
	}
	if err := ValidateWelcome(m, lease, incarnation); err != nil {
		_ = c.Close()
		return nil, true, fmt.Errorf("%w (agent %s)", err, addr)
	}
	_ = c.SetDeadline(time.Time{})
	dr.timeout = t.ReadTimeout
	w := &netConn{
		c: c, fw: fw,
		msgs: make(chan Message, 64), dying: make(chan struct{}), done: make(chan struct{}),
		id:   SlotIdentity{Remote: true, Addr: addr, Lease: lease, Epoch: incarnation, Name: m.Ident},
		caps: m.Caps,
	}
	w.lastBeat.Store(time.Now().UnixNano())
	go func() {
		for {
			m, err := r.next()
			if err != nil {
				w.waitErr = err
				break
			}
			if m.Lease != lease {
				// Fencing: a frame from some other lease (a zombie serve loop,
				// a confused agent) is not proof of life and must never reach
				// the supervision loop as a deliverable result.
				w.staleFrames.Add(1)
				continue
			}
			w.lastBeat.Store(time.Now().UnixNano())
			select {
			case w.msgs <- m:
			case <-w.dying:
				// Consumer gone; keep draining until the peer closes.
			}
		}
		close(w.msgs)
		close(w.done)
	}()
	return w, true, nil
}

// deadlineReader arms a fresh read deadline before every Read, turning
// net.Conn's absolute deadlines into the per-read timeout DialTransport
// exposes. timeout is written once, before the pump goroutine starts.
type deadlineReader struct {
	c       net.Conn
	timeout time.Duration
}

func (r *deadlineReader) Read(p []byte) (int, error) {
	if r.timeout > 0 {
		_ = r.c.SetReadDeadline(time.Now().Add(r.timeout))
	}
	return r.c.Read(p)
}

// netConn is one leased TCP attachment to a remote agent.
type netConn struct {
	c     net.Conn
	fw    *frameWriter
	msgs  chan Message // closed when the pump sees a terminal read error
	dying chan struct{}
	done  chan struct{}

	lastBeat    atomic.Int64 // unix nanos of the last valid-lease frame
	staleFrames atomic.Int64 // frames dropped for carrying a foreign lease
	killOnce    sync.Once
	waitErr     error // set by the pump before done closes
	id          SlotIdentity
	caps        []string // agent capabilities from the welcome frame
}

func (w *netConn) Send(m Message) error {
	_ = w.c.SetWriteDeadline(time.Now().Add(netWriteTimeout))
	return w.fw.send(m)
}

func (w *netConn) Msgs() <-chan Message { return w.msgs }

func (w *netConn) Identity() SlotIdentity { return w.id }

// Caps reports the agent's advertised capabilities (from its welcome). The
// pool uses it to decide whether this peer understands span propagation;
// an agent predating capability echo reports none and simply gets no
// trace fields.
func (w *netConn) Caps() []string { return w.caps }

// StaleFrames reports how many inbound frames this connection fenced off
// for carrying a lease other than its own.
func (w *netConn) StaleFrames() int64 { return w.staleFrames.Load() }

func (w *netConn) Stale(timeout time.Duration) bool {
	return time.Since(time.Unix(0, w.lastBeat.Load())) > timeout
}

// Kill severs the connection. The agent process keeps running and keeps
// accepting new connections; only this lease dies.
func (w *netConn) Kill() {
	w.killOnce.Do(func() { close(w.dying) })
	_ = w.c.Close()
}

// EnsureDead severs the connection and waits for the pump to drain.
func (w *netConn) EnsureDead() {
	w.Kill()
	<-w.done
}

// Shutdown tells the agent this lease is done (its serve loop for this
// connection exits; the agent itself keeps listening) and closes the link.
func (w *netConn) Shutdown() {
	_ = w.Send(Message{Type: MsgShutdown})
	select {
	case <-w.done:
	case <-time.After(2 * time.Second):
	}
	w.EnsureDead()
}

// WaitResult reports why the connection ended (only meaningful after Msgs
// closed).
func (w *netConn) WaitResult() error {
	<-w.done
	if w.waitErr == nil || errors.Is(w.waitErr, io.EOF) {
		return errors.New("connection closed")
	}
	return w.waitErr
}
