// Package worker provides process-isolated architecture evaluation: a
// supervisor-side Pool that implements search.Evaluator by dispatching
// evaluations to disposable worker subprocesses, and the worker-side Serve
// loop those subprocesses run.
//
// This is the in-repo analogue of the paper's Balsam deployment on Theta
// (Maulik et al., SC 2020, §IV-A): every evaluation runs as an independent
// job, so a node that OOMs, hangs, or is SIGKILLed mid-training costs one
// evaluation — which the supervisor re-dispatches — never the search. The
// supervisor restarts crashed workers with seeded exponential backoff under
// a restart budget, detects silent deaths via heartbeats, speculatively
// re-executes stragglers (first result wins, the loser is cancelled), and
// degrades gracefully to an in-process evaluator when subprocesses cannot
// be spawned at all.
//
// The wire protocol is line-delimited JSON over the worker's stdin/stdout.
// Worker logs go to stderr, which the supervisor passes through. Exactly
// one evaluation is in flight per worker at a time:
//
//	supervisor → worker:  {"type":"eval","id":7,"arch":[3,1,...],"seed":42}
//	                      {"type":"cancel","id":7}
//	                      {"type":"shutdown"}
//	worker → supervisor:  {"type":"ready"}
//	                      {"type":"heartbeat"}          (periodic, even mid-training)
//	                      {"type":"result","id":7,"reward":0.93}
//
// The same frames also run over TCP between a driver (DialTransport) and a
// dialable worker agent (ServeListener, `nasrun -worker -listen`). A network
// connection opens with a versioned handshake that fences the slot with a
// lease:
//
//	driver → agent:  {"type":"hello","schema":1,"lease":771...,"epoch":2,"caps":["eval"]}
//	agent → driver:  {"type":"welcome","schema":1,"lease":771...,"epoch":2,"ident":"host/4242"}
//
// after which the agent stamps the lease and epoch into every frame it
// sends. The driver mints a fresh lease per (slot, reconnect-epoch) and
// drops frames carrying any other lease, so a zombie agent still grinding a
// superseded evaluation can never deliver its result (see DESIGN.md §9).
//
// Rewards cross the boundary as JSON float64, which round-trips exactly, so
// a single-worker isolated run reproduces the in-process search history
// bit for bit.
package worker

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"podnas/internal/arch"
)

// Message type tags of the wire protocol.
const (
	// Supervisor → worker.
	MsgEval     = "eval"
	MsgCancel   = "cancel"
	MsgShutdown = "shutdown"
	// Worker → supervisor.
	MsgReady     = "ready"
	MsgHeartbeat = "heartbeat"
	MsgResult    = "result"
	// MsgSpan ships one completed trace span from the worker back to the
	// driver (trace capability only): the worker's train/epoch spans arrive
	// before the result frame and the driver re-records them, stitching the
	// worker's subtree into the driver-side trace. Old drivers ignore the
	// unknown frame type; old agents never send it.
	MsgSpan = "span"
	// Network handshake (driver → agent, then agent → driver). Pipe-spawned
	// subprocess workers skip the handshake entirely: their channel is
	// private to the supervisor that spawned them, so the pipe wire format
	// stays byte-identical to earlier releases.
	MsgHello   = "hello"
	MsgWelcome = "welcome"
)

// ProtoSchema is the wire-protocol generation carried in the handshake. A
// driver announces the version it speaks in its hello; an agent refuses a
// hello from the future (it cannot know what the frames mean) and answers
// with the version it actually speaks, which the driver checks in turn.
// Bump it when an existing frame field changes meaning, not when fields or
// message types are added — unknown JSON fields are ignored by both sides.
const ProtoSchema = 1

// Message is one protocol frame. Unused fields are omitted on the wire.
type Message struct {
	Type string `json:"type"`
	// ID correlates an eval request with its cancel and result frames.
	ID uint64 `json:"id,omitempty"`
	// Arch and Seed define the evaluation (eval frames).
	Arch arch.Arch `json:"arch,omitempty"`
	Seed uint64    `json:"seed,omitempty"`
	// Reward, Err, and Transient carry the outcome (result frames). JSON
	// cannot encode non-finite floats, so workers clamp those to
	// search.DivergedReward before replying, mirroring the checkpoint codec.
	Reward    float64 `json:"reward,omitempty"`
	Err       string  `json:"err,omitempty"`
	Transient bool    `json:"transient,omitempty"`

	// Network-transport fields. Schema is the handshake protocol generation
	// (hello/welcome). Lease and Epoch fence one slot incarnation: the
	// driver mints them per connection, the agent echoes them in every frame
	// it sends, and the driver drops any frame whose lease is not the one it
	// currently holds for that slot — a zombie worker from a stale lease can
	// never deliver a result. Ident names the agent ("host/pid") in the
	// welcome; Caps lists what it can do (currently just "eval").
	Schema int      `json:"schema,omitempty"`
	Lease  uint64   `json:"lease,omitempty"`
	Epoch  int      `json:"epoch,omitempty"`
	Ident  string   `json:"ident,omitempty"`
	Caps   []string `json:"caps,omitempty"`

	// Trace-propagation fields (the "trace" capability; no schema bump —
	// both sides ignore unknown fields). Trace carries an encoded span
	// context ("1-<trace>-<span>", see internal/obs/span): on an eval frame
	// it is the parent context the worker derives its spans under; on a
	// span frame it is the completed span's own identity. Parent, Name,
	// Seconds, and TrainEpoch describe the completed span (span frames
	// only; TrainEpoch has its own field because Epoch already means lease
	// incarnation on this wire).
	Trace      string  `json:"trace,omitempty"`
	Parent     string  `json:"parent,omitempty"`
	Name       string  `json:"name,omitempty"`
	Seconds    float64 `json:"seconds,omitempty"`
	TrainEpoch int     `json:"train_epoch,omitempty"`
}

// Capabilities negotiated in the hello/welcome handshake. Future
// capabilities (weight shipping, island migration) extend this list
// without a schema bump.
const (
	// CapEval is evaluating architectures — the baseline every agent has.
	CapEval = "eval"
	// CapTrace is span-context propagation: a driver that includes it in
	// its hello understands span frames; an agent that echoes it in its
	// welcome Caps will emit them for eval frames carrying a Trace field.
	// Either side missing the capability degrades to no spans, never to a
	// protocol error.
	CapTrace = "trace"
)

// HasCap reports whether a capability list contains name.
func HasCap(caps []string, name string) bool {
	for _, c := range caps {
		if c == name {
			return true
		}
	}
	return false
}

// LeaseID derives the fencing token for one slot incarnation. It is seeded
// (deterministic for tests) and collision-free across the (slot, epoch)
// pairs one pool can mint; zero — the "unleased" value pipe workers carry —
// is never returned.
func LeaseID(seed uint64, slot, epoch int) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	h = (h ^ (uint64(slot) + 1)) * 0x100000001b3
	h ^= h >> 29
	h = (h ^ (uint64(epoch) + 1)) * 0x100000001b3
	h ^= h >> 32
	if h == 0 {
		return 1
	}
	return h
}

// ValidateHello checks a driver's opening frame on the agent side: the right
// type, a schema the agent can speak, and a nonzero lease to echo. The error
// is safe to send back to the driver verbatim.
func ValidateHello(m Message) error {
	if m.Type != MsgHello {
		return fmt.Errorf("worker: handshake: expected %q frame, got %q", MsgHello, m.Type)
	}
	if m.Schema < 1 || m.Schema > ProtoSchema {
		return fmt.Errorf("worker: handshake: driver speaks protocol schema %d, this agent speaks 1..%d", m.Schema, ProtoSchema)
	}
	if m.Lease == 0 {
		return fmt.Errorf("worker: handshake: hello carries no lease")
	}
	return nil
}

// ValidateWelcome checks the agent's handshake reply on the driver side: the
// right type, a schema within what the driver speaks, the exact lease and
// epoch echoed back (proof the agent acknowledged the fence), and a worker
// identity.
func ValidateWelcome(m Message, lease uint64, epoch int) error {
	if m.Type != MsgWelcome {
		if m.Type == MsgHello {
			return fmt.Errorf("worker: handshake: peer sent its own hello; two drivers dialed each other?")
		}
		return fmt.Errorf("worker: handshake: expected %q frame, got %q", MsgWelcome, m.Type)
	}
	if m.Err != "" {
		return fmt.Errorf("worker: handshake: agent refused: %s", m.Err)
	}
	if m.Schema < 1 || m.Schema > ProtoSchema {
		return fmt.Errorf("worker: handshake: agent speaks protocol schema %d, this driver speaks 1..%d", m.Schema, ProtoSchema)
	}
	if m.Lease != lease || m.Epoch != epoch {
		return fmt.Errorf("worker: handshake: agent echoed lease %d epoch %d, want lease %d epoch %d", m.Lease, m.Epoch, lease, epoch)
	}
	if m.Ident == "" {
		return fmt.Errorf("worker: handshake: welcome carries no worker identity")
	}
	return nil
}

// maxFrameBytes bounds one protocol line. Frames are tiny (an architecture
// is ~14 small ints), so 1 MiB is generous headroom, not a real limit.
const maxFrameBytes = 1 << 20

// frameWriter serializes concurrent frame writes (heartbeat goroutine vs.
// evaluation results) onto one stream.
type frameWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{enc: json.NewEncoder(w)}
}

// send writes one frame as a single line. The error matters to supervisors
// (a broken pipe means the peer died) and is advisory to workers.
func (w *frameWriter) send(m Message) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enc.Encode(m)
}

// frameReader yields frames from a line-delimited JSON stream.
type frameReader struct {
	sc *bufio.Scanner
}

func newFrameReader(r io.Reader) *frameReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxFrameBytes)
	return &frameReader{sc: sc}
}

// next returns the next parseable frame. Unparseable lines (a frame torn by
// a mid-write crash, stray debug output on the wrong stream) are skipped:
// the liveness mechanisms — heartbeats, process exit — decide the peer's
// fate, not a single corrupt line. io.EOF reports a cleanly closed stream.
func (r *frameReader) next() (Message, error) {
	for r.sc.Scan() {
		line := r.sc.Bytes()
		var m Message
		if err := json.Unmarshal(line, &m); err != nil || m.Type == "" {
			continue
		}
		return m, nil
	}
	if err := r.sc.Err(); err != nil {
		return Message{}, fmt.Errorf("worker: protocol stream: %w", err)
	}
	return Message{}, io.EOF
}
