// Package worker provides process-isolated architecture evaluation: a
// supervisor-side Pool that implements search.Evaluator by dispatching
// evaluations to disposable worker subprocesses, and the worker-side Serve
// loop those subprocesses run.
//
// This is the in-repo analogue of the paper's Balsam deployment on Theta
// (Maulik et al., SC 2020, §IV-A): every evaluation runs as an independent
// job, so a node that OOMs, hangs, or is SIGKILLed mid-training costs one
// evaluation — which the supervisor re-dispatches — never the search. The
// supervisor restarts crashed workers with seeded exponential backoff under
// a restart budget, detects silent deaths via heartbeats, speculatively
// re-executes stragglers (first result wins, the loser is cancelled), and
// degrades gracefully to an in-process evaluator when subprocesses cannot
// be spawned at all.
//
// The wire protocol is line-delimited JSON over the worker's stdin/stdout.
// Worker logs go to stderr, which the supervisor passes through. Exactly
// one evaluation is in flight per worker at a time:
//
//	supervisor → worker:  {"type":"eval","id":7,"arch":[3,1,...],"seed":42}
//	                      {"type":"cancel","id":7}
//	                      {"type":"shutdown"}
//	worker → supervisor:  {"type":"ready"}
//	                      {"type":"heartbeat"}          (periodic, even mid-training)
//	                      {"type":"result","id":7,"reward":0.93}
//
// Rewards cross the boundary as JSON float64, which round-trips exactly, so
// a single-worker isolated run reproduces the in-process search history
// bit for bit.
package worker

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"podnas/internal/arch"
)

// Message type tags of the wire protocol.
const (
	// Supervisor → worker.
	MsgEval     = "eval"
	MsgCancel   = "cancel"
	MsgShutdown = "shutdown"
	// Worker → supervisor.
	MsgReady     = "ready"
	MsgHeartbeat = "heartbeat"
	MsgResult    = "result"
)

// Message is one protocol frame. Unused fields are omitted on the wire.
type Message struct {
	Type string `json:"type"`
	// ID correlates an eval request with its cancel and result frames.
	ID uint64 `json:"id,omitempty"`
	// Arch and Seed define the evaluation (eval frames).
	Arch arch.Arch `json:"arch,omitempty"`
	Seed uint64    `json:"seed,omitempty"`
	// Reward, Err, and Transient carry the outcome (result frames). JSON
	// cannot encode non-finite floats, so workers clamp those to
	// search.DivergedReward before replying, mirroring the checkpoint codec.
	Reward    float64 `json:"reward,omitempty"`
	Err       string  `json:"err,omitempty"`
	Transient bool    `json:"transient,omitempty"`
}

// maxFrameBytes bounds one protocol line. Frames are tiny (an architecture
// is ~14 small ints), so 1 MiB is generous headroom, not a real limit.
const maxFrameBytes = 1 << 20

// frameWriter serializes concurrent frame writes (heartbeat goroutine vs.
// evaluation results) onto one stream.
type frameWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{enc: json.NewEncoder(w)}
}

// send writes one frame as a single line. The error matters to supervisors
// (a broken pipe means the peer died) and is advisory to workers.
func (w *frameWriter) send(m Message) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enc.Encode(m)
}

// frameReader yields frames from a line-delimited JSON stream.
type frameReader struct {
	sc *bufio.Scanner
}

func newFrameReader(r io.Reader) *frameReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxFrameBytes)
	return &frameReader{sc: sc}
}

// next returns the next parseable frame. Unparseable lines (a frame torn by
// a mid-write crash, stray debug output on the wrong stream) are skipped:
// the liveness mechanisms — heartbeats, process exit — decide the peer's
// fate, not a single corrupt line. io.EOF reports a cleanly closed stream.
func (r *frameReader) next() (Message, error) {
	for r.sc.Scan() {
		line := r.sc.Bytes()
		var m Message
		if err := json.Unmarshal(line, &m); err != nil || m.Type == "" {
			continue
		}
		return m, nil
	}
	if err := r.sc.Err(); err != nil {
		return Message{}, fmt.Errorf("worker: protocol stream: %w", err)
	}
	return Message{}, io.EOF
}
