package worker

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"podnas/internal/arch"
	"podnas/internal/obs"
	"podnas/internal/obs/span"
	"podnas/internal/search"
	"podnas/internal/tensor"
)

// errPoolClosed signals a supervision loop ending because Close was called,
// not because its worker failed.
var errPoolClosed = errors.New("worker: pool closed")

// errHeartbeat marks a worker killed for going silent.
var errHeartbeat = errors.New("worker: missed heartbeats")

// PoolOptions configures a supervised pool of worker processes.
type PoolOptions struct {
	// Workers is the number of worker slots kept attached (>= 1).
	Workers int
	// Command builds the exec.Cmd for one worker process. workerID is the
	// stable pool slot; incarnation counts respawns of that slot, so fault
	// seeds can differ across restarts (a deterministic self-kill decision
	// must not recur forever in the replacement process). A nil Stderr is
	// replaced with os.Stderr so worker logs pass through. Ignored when
	// Transport is set.
	Command func(workerID, incarnation int) *exec.Cmd
	// Transport attaches slots to workers. Nil means a PipeTransport built
	// from Command — the classic subprocess pool. A DialTransport attaches
	// slots to remote agents over TCP; the supervision loop (heartbeats,
	// restart budgets, speculation, CrashLimit) is identical either way.
	Transport Transport
	// LocalFallback, when non-nil, is the transport a slot degrades to after
	// its primary Transport stays unreachable past the restart budget —
	// typically a PipeTransport, so a driver that loses its remote agents
	// falls back to local subprocess workers before giving up entirely. The
	// slot's restart budget resets on the switch.
	LocalFallback Transport
	// Heartbeat is the expected heartbeat cadence (default 1s); it must
	// match the interval the worker serves with.
	Heartbeat time.Duration
	// HeartbeatMisses is how many consecutive silent intervals mark a worker
	// dead (default 3). Detection uses any frame as proof of life.
	HeartbeatMisses int
	// MaxRestarts is the per-worker respawn budget (default 3). A slot that
	// exhausts it retires; when every slot has retired the pool degrades
	// (see Fallback).
	MaxRestarts int
	// RestartBackoff is the base respawn delay (default 100ms), doubled per
	// consecutive restart with seeded jitter and capped at MaxBackoff
	// (default 5s).
	RestartBackoff time.Duration
	MaxBackoff     time.Duration
	// StartTimeout bounds spawn-to-ready, which includes the worker building
	// its data pipeline (default 120s).
	StartTimeout time.Duration
	// Seed derives the deterministic restart-backoff jitter.
	Seed uint64
	// SpeculativeAfter, when positive, re-dispatches an evaluation still
	// unanswered after this long to a second worker — the paper's defense
	// against straggler nodes. The first result wins; the loser is
	// cancelled. At most one speculative copy runs per evaluation.
	SpeculativeAfter time.Duration
	// Fallback, when non-nil, evaluates in-process once the pool has
	// degraded: spawning unavailable or every slot retired. With a nil
	// Fallback a degraded pool fails evaluations with ErrTransient so the
	// runner's retry policy decides.
	Fallback search.Evaluator
	// KillNth, when positive, kills the worker attachment right after it is
	// sent the Nth dispatched evaluation (counting every dispatch, once):
	// SIGKILL for a subprocess, connection close for a remote agent —
	// deterministic fault injection for tests and CI smoke runs.
	KillNth int
	// CrashLimit is how many worker crashes a single evaluation may consume
	// before it fails with ErrTransient instead of being re-dispatched
	// (default 3). It bounds the damage of a poison evaluation that kills
	// every worker it touches.
	CrashLimit int
	// Recorder, when non-nil, receives supervision events: worker
	// spawn/crash/restart, heartbeat kills, speculation launches/wins, and
	// remote connect/disconnect/lease-expiry. The Event.Worker field carries
	// the pool slot.
	Recorder obs.Recorder
	// Trace, when valid, is the run's root span context. Connection-level
	// spans (handshake) parent under it; per-evaluation spans (dispatch,
	// rpc, and the worker-side train/epoch subtree) parent under the eval
	// span the runner plants into the evaluation context. The zero value
	// disables pool span emission entirely.
	Trace span.Context
}

func (o PoolOptions) heartbeat() time.Duration {
	if o.Heartbeat > 0 {
		return o.Heartbeat
	}
	return time.Second
}

func (o PoolOptions) heartbeatTimeout() time.Duration {
	misses := o.HeartbeatMisses
	if misses < 2 {
		misses = 3
	}
	return time.Duration(misses) * o.heartbeat()
}

func (o PoolOptions) maxRestarts() int {
	if o.MaxRestarts > 0 {
		return o.MaxRestarts
	}
	if o.MaxRestarts == 0 {
		return 3
	}
	return 0
}

func (o PoolOptions) startTimeout() time.Duration {
	if o.StartTimeout > 0 {
		return o.StartTimeout
	}
	return 120 * time.Second
}

func (o PoolOptions) crashLimit() int {
	if o.CrashLimit > 0 {
		return o.CrashLimit
	}
	return 3
}

// PoolStats counts supervision events.
type PoolStats struct {
	Spawns            int // worker attachments started (incl. restarts)
	Restarts          int // respawns after a crash or silent death
	Crashes           int // worker deaths: non-zero exits, broken pipes, dropped links
	HeartbeatTimeouts int // workers killed for going silent
	Redispatches      int // evaluations re-queued after losing their worker
	SpeculativeRuns   int // duplicate dispatches of stragglers
	SpeculativeWins   int // evaluations decided by the speculative copy
	FallbackEvals     int // evaluations served in-process after degradation
	Connects          int // remote connections handshaken and leased
	Disconnects       int // remote connections lost
	LeaseExpires      int // leases retired with an evaluation still in flight
	StaleLeaseFrames  int // frames fenced off for carrying a superseded lease
	LocalFallbacks    int // slots demoted from the remote transport to LocalFallback
	Degraded          bool
}

// jobResult is the terminal outcome of one pooled evaluation.
type jobResult struct {
	reward float64
	err    error
}

// job is one evaluation moving through the pool. The same *job may sit in
// the queue twice (crash re-dispatch, speculation); the done flag makes
// delivery first-wins and everything after it a no-op.
type job struct {
	id     uint64
	a      arch.Arch
	seed   uint64
	ctx    context.Context    // cancelled when the job no longer matters
	cancel context.CancelFunc // fires ctx: caller gone or a dispatch won
	res    chan jobResult     // buffered 1; written by the winning deliver

	// Tracing identity, captured from the caller's context at submit time:
	// sc is the eval span the runner derived (zero = tracing off for this
	// job), eval its index in the run, enq the enqueue instant (the
	// dispatch span's start).
	sc   span.Context
	eval int
	enq  time.Time

	mu      sync.Mutex
	done    bool
	crashes int // workers lost while running this job

	dispatches atomic.Int64 // total dispatch attempts
	// specAt is the dispatch count at the moment the speculative copy was
	// enqueued (0 = never speculated): any later dispatch is the copy, so a
	// result from it counts as a speculative win.
	specAt atomic.Int64
}

func (j *job) finished() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done
}

// tryFinish marks the job done if no result has been delivered, returning
// whether this call won the race.
func (j *job) tryFinish() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done {
		return false
	}
	j.done = true
	return true
}

// deliver records the first result and cancels any other dispatch of the
// same job (the speculation loser). Later results are dropped.
func (j *job) deliver(r jobResult) bool {
	if !j.tryFinish() {
		return false
	}
	j.res <- r
	j.cancel()
	return true
}

// Pool dispatches evaluations to supervised workers — subprocesses over
// pipes or remote agents over TCP, per its Transport. It implements
// search.Evaluator and search.ContextEvaluator, so the search runners use
// it exactly like the in-process TrainingEvaluator. Safe for concurrent
// use.
type Pool struct {
	opts      PoolOptions
	transport Transport
	queue     chan *job

	closed    chan struct{}
	closeOnce sync.Once
	failed    chan struct{} // closed when the last worker slot retires
	failOnce  sync.Once
	wg        sync.WaitGroup

	live        atomic.Int64
	everReady   atomic.Bool
	nextJobID   atomic.Uint64
	dispatchSeq atomic.Int64

	mu     sync.Mutex
	stats  PoolStats
	idents map[int]SlotIdentity // worker slot -> live attachment identity
}

// NewPool starts the supervision loops and returns immediately; workers
// attach and handshake in the background, and evaluations queue until one
// is ready. Callers must Close the pool to reap processes and connections.
func NewPool(opts PoolOptions) (*Pool, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("worker: pool needs at least one worker, got %d", opts.Workers)
	}
	tr := opts.Transport
	if tr == nil {
		if opts.Command == nil {
			return nil, errors.New("worker: pool needs a Command or a Transport")
		}
		tr = &PipeTransport{Command: opts.Command}
	}
	p := &Pool{
		opts:      opts,
		transport: tr,
		queue:     make(chan *job, 16*opts.Workers+64),
		closed:    make(chan struct{}),
		failed:    make(chan struct{}),
		idents:    make(map[int]SlotIdentity),
	}
	p.live.Store(int64(opts.Workers))
	p.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go p.supervise(i)
	}
	return p, nil
}

// Close shuts every worker down (gracefully when idle, forcefully when
// mid-evaluation) and waits for the supervision loops to exit.
func (p *Pool) Close() error {
	p.closeOnce.Do(func() { close(p.closed) })
	p.wg.Wait()
	return nil
}

// Stats returns a snapshot of the supervision counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Pids returns the pids of the currently live local worker processes, for
// tests that kill real workers from outside. Remote slots have no local
// pid and are not listed — see Identities for the full per-slot view.
func (p *Pool) Pids() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, 0, len(p.idents))
	for _, id := range p.idents {
		if !id.Remote {
			out = append(out, id.PID)
		}
	}
	return out
}

// Identities returns the transport identity of every currently attached
// slot: "local:<pid>" for subprocess workers, "remote:<addr>#<lease>" for
// leased network attachments.
func (p *Pool) Identities() map[int]SlotIdentity {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[int]SlotIdentity, len(p.idents))
	for slot, id := range p.idents {
		out[slot] = id
	}
	return out
}

// Evaluate implements search.Evaluator.
func (p *Pool) Evaluate(a arch.Arch, seed uint64) (float64, error) {
	return p.EvaluateCtx(context.Background(), a, seed)
}

// EvaluateCtx dispatches one evaluation to the pool and blocks until a
// worker answers, the context is cancelled, or the pool degrades. Worker
// crashes are absorbed internally: the evaluation is re-dispatched (bounded
// by CrashLimit) and the caller only ever sees the final outcome.
func (p *Pool) EvaluateCtx(ctx context.Context, a arch.Arch, seed uint64) (float64, error) {
	select {
	case <-p.failed:
		return p.degradedEval(ctx, a, seed)
	default:
	}
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	j := &job{
		id: p.nextJobID.Add(1), a: a.Clone(), seed: seed,
		ctx: jctx, cancel: cancel, res: make(chan jobResult, 1),
	}
	if sc, ok := span.From(ctx); ok && p.opts.Trace.Valid() {
		j.sc = sc
		j.eval, _ = obs.EvalFrom(ctx)
		j.enq = time.Now()
	}
	select {
	case p.queue <- j:
	case <-ctx.Done():
		return 0, fmt.Errorf("worker: evaluation cancelled: %w", ctx.Err())
	case <-p.failed:
		return p.degradedEval(ctx, a, seed)
	}
	var spec <-chan time.Time
	if p.opts.SpeculativeAfter > 0 {
		t := time.NewTimer(p.opts.SpeculativeAfter)
		defer t.Stop()
		spec = t.C
	}
	for {
		select {
		case r := <-j.res:
			return r.reward, r.err
		case <-ctx.Done():
			if j.tryFinish() {
				return 0, fmt.Errorf("worker: evaluation cancelled: %w", ctx.Err())
			}
			r := <-j.res // a result raced the cancellation in; take it
			return r.reward, r.err
		case <-p.failed:
			if j.tryFinish() {
				return p.degradedEval(ctx, a, seed)
			}
			r := <-j.res
			return r.reward, r.err
		case <-spec:
			// Straggler: enqueue one speculative copy. Best-effort — a full
			// queue means every worker is saturated and a duplicate could
			// not run anyway.
			spec = nil
			select {
			case p.queue <- j:
				j.specAt.Store(j.dispatches.Load())
				p.bump(func(s *PoolStats) { s.SpeculativeRuns++ })
				p.record(obs.Event{Kind: obs.KindSpecLaunch, Eval: int(j.id)})
			default:
			}
		}
	}
}

// degradedEval serves an evaluation after the pool has lost every worker:
// in-process via Fallback when configured, otherwise a transient error so
// the runner's retry policy (and DivergedReward accounting) takes over.
func (p *Pool) degradedEval(ctx context.Context, a arch.Arch, seed uint64) (float64, error) {
	if p.opts.Fallback == nil {
		return 0, fmt.Errorf("worker: no live workers (restart budgets exhausted): %w", search.ErrTransient)
	}
	p.bump(func(s *PoolStats) { s.FallbackEvals++ })
	if ce, ok := p.opts.Fallback.(search.ContextEvaluator); ok {
		return ce.EvaluateCtx(ctx, a, seed)
	}
	return p.opts.Fallback.Evaluate(a, seed)
}

func (p *Pool) bump(f func(*PoolStats)) {
	p.mu.Lock()
	f(&p.stats)
	p.mu.Unlock()
}

// record forwards one supervision event to the configured Recorder. Pool
// events carry only ints and static strings, so constructing the Event for a
// nil Recorder costs nothing measurable.
func (p *Pool) record(e obs.Event) {
	if p.opts.Recorder != nil {
		p.opts.Recorder.Record(e)
	}
}

// supervise owns one worker slot: attach, serve jobs, and on any failure
// reattach with seeded exponential backoff until the restart budget runs
// out. A slot on a remote transport that stays unreachable past the budget
// demotes to LocalFallback (when configured) before retiring.
func (p *Pool) supervise(workerID int) {
	defer p.wg.Done()
	defer p.retire()
	tr := p.transport
	restarts := 0
	for incarnation := 0; ; incarnation++ {
		select {
		case <-p.closed:
			return
		default:
		}
		w, started, err := p.connect(tr, workerID, incarnation)
		if err == nil {
			id := w.Identity()
			p.everReady.Store(true)
			p.setIdent(workerID, id)
			p.record(obs.Event{Kind: obs.KindWorkerSpawn, Worker: workerID, Attempt: incarnation})
			if id.Remote {
				p.bump(func(s *PoolStats) { s.Connects++ })
				p.record(obs.Event{Kind: obs.KindWorkerConnect, Worker: workerID, Attempt: id.Epoch, Ident: id.String()})
			}
			err = p.runWorker(workerID, w)
			p.clearIdent(workerID)
			w.EnsureDead()
			p.collectFenced(w)
			if errors.Is(err, errPoolClosed) {
				return
			}
			p.bump(func(s *PoolStats) {
				s.Crashes++
				if errors.Is(err, errHeartbeat) {
					s.HeartbeatTimeouts++
				}
				if id.Remote {
					s.Disconnects++
				}
			})
			if errors.Is(err, errHeartbeat) {
				p.record(obs.Event{Kind: obs.KindHeartbeatMiss, Worker: workerID, Err: err.Error()})
			}
			if id.Remote {
				p.record(obs.Event{Kind: obs.KindWorkerDisconnect, Worker: workerID, Ident: id.String(), Err: err.Error()})
			}
			p.record(obs.Event{Kind: obs.KindWorkerCrash, Worker: workerID, Attempt: incarnation, Err: err.Error()})
		} else {
			if errors.Is(err, errPoolClosed) {
				return
			}
			if !started && !p.everReady.Load() {
				// The worker endpoint cannot even come up and no worker ever
				// could: the transport is unavailable. Demote to the local
				// fallback transport when there is one; otherwise retire
				// immediately so the pool degrades to the in-process Fallback
				// without burning the restart budget on a hopeless loop.
				if next := p.demote(tr, workerID, err); next != nil {
					tr, restarts = next, 0
					continue
				}
				fmt.Fprintf(os.Stderr, "worker: slot %d cannot spawn (%v); degrading\n", workerID, err)
				return
			}
			fmt.Fprintf(os.Stderr, "worker: slot %d spawn failed: %v\n", workerID, err)
		}
		if restarts >= p.opts.maxRestarts() {
			if next := p.demote(tr, workerID, err); next != nil {
				tr, restarts = next, 0
				continue
			}
			return
		}
		restarts++
		p.bump(func(s *PoolStats) { s.Restarts++ })
		p.record(obs.Event{Kind: obs.KindWorkerRestart, Worker: workerID, Attempt: restarts})
		select {
		case <-p.closed:
			return
		case <-time.After(p.backoffDelay(workerID, restarts)):
		}
	}
}

// demote switches one slot off a failed primary transport onto
// LocalFallback, resetting its restart budget. It returns nil — keep
// retiring — when there is no fallback or the slot is already on it.
func (p *Pool) demote(cur Transport, workerID int, cause error) Transport {
	lf := p.opts.LocalFallback
	if lf == nil || cur == lf {
		return nil
	}
	p.bump(func(s *PoolStats) { s.LocalFallbacks++ })
	fmt.Fprintf(os.Stderr, "worker: slot %d: %s transport exhausted its budget (%v); degrading to %s workers\n",
		workerID, cur.Kind(), cause, lf.Kind())
	return lf
}

// collectFenced folds a dead connection's fenced-frame count into the pool
// stats (remote attachments only).
func (p *Pool) collectFenced(w Conn) {
	f, ok := w.(interface{ StaleFrames() int64 })
	if !ok {
		return
	}
	if n := f.StaleFrames(); n > 0 {
		p.bump(func(s *PoolStats) { s.StaleLeaseFrames += int(n) })
	}
}

// backoffDelay is the reattach delay: exponential in the consecutive
// restart count with deterministic seeded jitter in [0.5, 1.5), capped.
func (p *Pool) backoffDelay(workerID, attempt int) time.Duration {
	base := p.opts.RestartBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	ceil := p.opts.MaxBackoff
	if ceil <= 0 {
		ceil = 5 * time.Second
	}
	d := float64(base)
	for i := 1; i < attempt && time.Duration(d) < ceil; i++ {
		d *= 2
	}
	rng := tensor.NewRNG(p.opts.Seed ^ uint64(workerID)*0x9e3779b97f4a7c15 ^ uint64(attempt)*0x2545f4914f6cdd1d)
	d *= 0.5 + rng.Float64()
	if time.Duration(d) > ceil {
		return ceil
	}
	return time.Duration(d)
}

// retire removes this slot from the live set; the last retirement fails the
// pool so pending and future evaluations degrade instead of queueing
// forever.
func (p *Pool) retire() {
	if p.live.Add(-1) != 0 {
		return
	}
	p.failOnce.Do(func() {
		select {
		case <-p.closed: // normal shutdown, not degradation
		default:
			p.bump(func(s *PoolStats) { s.Degraded = true })
		}
		close(p.failed)
	})
}

func (p *Pool) setIdent(workerID int, id SlotIdentity) {
	p.mu.Lock()
	p.idents[workerID] = id
	p.mu.Unlock()
}

func (p *Pool) clearIdent(workerID int) {
	p.mu.Lock()
	delete(p.idents, workerID)
	p.mu.Unlock()
}

// runWorker serves jobs on one live worker attachment until the pool closes
// or the attachment fails (crash, broken pipe, dropped link, missed
// heartbeats).
func (p *Pool) runWorker(workerID int, w Conn) error {
	hbTimeout := p.opts.heartbeatTimeout()
	check := time.NewTicker(checkInterval(hbTimeout))
	defer check.Stop()
	for {
		select {
		case <-p.closed:
			w.Shutdown()
			return errPoolClosed
		case m, ok := <-w.Msgs():
			if !ok {
				return fmt.Errorf("worker: worker lost while idle: %w", w.WaitResult())
			}
			if m.Type == MsgSpan {
				// A span straggling in after its evaluation was delivered or
				// cancelled: it carries its own tree position, so it is still
				// worth recording.
				p.recordSpanFrame(m, 0, workerID)
			}
			// Proof of life already recorded by the pump.
		case <-check.C:
			if w.Stale(hbTimeout) {
				w.Kill()
				return errHeartbeat
			}
		case j := <-p.queue:
			if j.finished() {
				continue
			}
			if err := p.dispatch(w, j, workerID); err != nil {
				if id := w.Identity(); id.Remote && !errors.Is(err, errPoolClosed) && !j.finished() {
					// The lease died with the evaluation still claimed under
					// it: the job is re-dispatched below under whatever lease
					// comes next, and any result the old worker still grinds
					// out is fenced off by its stale lease ID.
					p.bump(func(s *PoolStats) { s.LeaseExpires++ })
					p.record(obs.Event{Kind: obs.KindLeaseExpire, Worker: workerID, Eval: int(j.id), Ident: id.String()})
				}
				p.requeue(j)
				return err
			}
		}
	}
}

// dispatch sends one evaluation to w and waits for its result. A nil return
// means the worker is healthy and idle again (even if the job itself
// failed or was cancelled); an error means the worker is lost and the job
// has not been answered.
//
// When the job carries an eval span and the peer speaks the trace
// capability, the eval frame is stamped with a derived "rpc" span context:
// the worker parents its train/epoch spans under it, and the pool records
// the rpc span itself (send → result delivery) plus a "dispatch" span
// covering the queue wait inside the pool.
func (p *Pool) dispatch(w Conn, j *job, workerID int) error {
	attempt := j.dispatches.Add(1)
	seq := p.dispatchSeq.Add(1)
	frame := Message{Type: MsgEval, ID: j.id, Arch: j.a, Seed: j.seed}
	var rpc span.Context
	traced := j.sc.Valid() && connTraces(w)
	if traced {
		rpc = span.Derive(j.sc, "rpc", j.id, uint64(attempt))
		frame.Trace = rpc.Encode()
	}
	sendT := time.Now()
	if err := w.Send(frame); err != nil {
		return fmt.Errorf("worker: dispatch write: %w", err)
	}
	if traced {
		e := span.End(span.Derive(j.sc, "dispatch", j.id, uint64(attempt)), j.sc.Span, "dispatch", sendT.Sub(j.enq))
		e.Eval, e.Worker = j.eval, workerID
		p.record(e)
	}
	if p.opts.KillNth > 0 && seq == int64(p.opts.KillNth) {
		// Deterministic injected fault: kill the attachment mid-evaluation
		// (SIGKILL for a subprocess, link cut for a remote agent).
		w.Kill()
	}
	hbTimeout := p.opts.heartbeatTimeout()
	check := time.NewTicker(checkInterval(hbTimeout))
	defer check.Stop()
	cancelDone := j.ctx.Done()
	for {
		select {
		case <-p.closed:
			w.Kill()
			return errPoolClosed
		case m, ok := <-w.Msgs():
			if !ok {
				return fmt.Errorf("worker: worker died mid-evaluation: %w", w.WaitResult())
			}
			if m.Type == MsgResult && m.ID == j.id {
				p.deliverResult(j, m, attempt)
				if traced {
					e := span.End(rpc, j.sc.Span, "rpc", time.Since(sendT))
					e.Eval, e.Worker = j.eval, workerID
					p.record(e)
				}
				return nil
			}
			if m.Type == MsgSpan {
				p.recordSpanFrame(m, j.eval, workerID)
				continue
			}
			// Heartbeats and stale results from a previously cancelled job.
		case <-check.C:
			if w.Stale(hbTimeout) {
				w.Kill()
				return errHeartbeat
			}
		case <-cancelDone:
			// The job stopped mattering: the caller is gone or another
			// dispatch won. Ask the worker to abandon it, then keep waiting
			// for the acknowledging result so the worker returns to a known
			// idle state; the heartbeat check still covers a wedged worker.
			cancelDone = nil
			if err := w.Send(Message{Type: MsgCancel, ID: j.id}); err != nil {
				return fmt.Errorf("worker: cancel write: %w", err)
			}
		}
	}
}

// connTraces reports whether the attachment's peer understands span
// propagation: a remote agent must have advertised the trace capability in
// its welcome; a pipe subprocess runs this same binary and self-gates on
// the eval frame's Trace field, so it always qualifies.
func connTraces(w Conn) bool {
	if c, ok := w.(interface{ Caps() []string }); ok {
		return HasCap(c.Caps(), CapTrace)
	}
	return true
}

// recordSpanFrame re-records a span that completed in the worker process
// into the driver-side event stream, which is what stitches the remote
// subtree (train, epochs) into the trace. Frames with a malformed span
// context are dropped — a corrupt identity poisons a tree.
func (p *Pool) recordSpanFrame(m Message, evalIdx, workerID int) {
	sc, err := span.Decode(m.Trace)
	if err != nil {
		return
	}
	var parent span.ID
	if m.Parent != "" {
		if parent, err = span.ParseID(m.Parent); err != nil {
			return
		}
	}
	e := span.End(sc, parent, m.Name, 0)
	e.Seconds = m.Seconds
	e.Eval, e.Worker, e.Epoch = evalIdx, workerID, m.TrainEpoch
	p.record(e)
}

// deliverResult decodes a result frame and completes the job. Transient
// worker-side failures are re-wrapped with ErrTransient so the runner's
// retry policy sees them exactly as in-process ones.
func (p *Pool) deliverResult(j *job, m Message, attempt int64) {
	var err error
	if m.Err != "" {
		if m.Transient {
			err = fmt.Errorf("%s: %w", m.Err, search.ErrTransient)
		} else {
			err = errors.New(m.Err)
		}
	}
	if j.deliver(jobResult{reward: m.Reward, err: err}) {
		if sa := j.specAt.Load(); sa > 0 && attempt > sa {
			p.bump(func(s *PoolStats) { s.SpeculativeWins++ })
			p.record(obs.Event{Kind: obs.KindSpecWin, Eval: int(j.id)})
		}
	}
}

// requeue gives a job whose worker died another chance, bounded by
// CrashLimit; past the limit it fails transiently (a poison evaluation must
// not grind through every worker's restart budget).
func (p *Pool) requeue(j *job) {
	if j.finished() {
		return
	}
	j.mu.Lock()
	j.crashes++
	crashes := j.crashes
	j.mu.Unlock()
	if crashes >= p.opts.crashLimit() {
		j.deliver(jobResult{err: fmt.Errorf("worker: evaluation lost %d workers: %w", crashes, search.ErrTransient)})
		return
	}
	p.bump(func(s *PoolStats) { s.Redispatches++ })
	select {
	case p.queue <- j:
	default:
		go func() {
			select {
			case p.queue <- j:
			case <-j.ctx.Done():
			case <-p.closed:
			}
		}()
	}
}

func checkInterval(hbTimeout time.Duration) time.Duration {
	iv := hbTimeout / 4
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	return iv
}

// connect attaches one worker through tr and waits for its ready frame
// under StartTimeout. started reports whether an attachment ever came up
// (false = the endpoint itself is unavailable, the fast-degradation
// signal).
func (p *Pool) connect(tr Transport, workerID, incarnation int) (w Conn, started bool, err error) {
	t0 := time.Now()
	w, started, err = tr.Connect(workerID, incarnation, p.closed)
	if err != nil {
		return nil, started, err
	}
	p.bump(func(s *PoolStats) { s.Spawns++ })
	ready := time.NewTimer(p.opts.startTimeout())
	defer ready.Stop()
	for {
		select {
		case m, ok := <-w.Msgs():
			if !ok {
				return nil, true, fmt.Errorf("worker: exited before ready: %w", w.WaitResult())
			}
			if m.Type == MsgReady {
				if root := p.opts.Trace; root.Valid() {
					// The handshake span covers attach-to-ready: dial +
					// hello/welcome for remote slots, spawn + pipeline build
					// for local ones.
					e := span.End(span.Derive(root, "handshake", uint64(workerID), uint64(incarnation)), root.Span, "handshake", time.Since(t0))
					e.Worker = workerID
					p.record(e)
				}
				return w, true, nil
			}
		case <-ready.C:
			w.EnsureDead()
			return nil, true, fmt.Errorf("worker: not ready within %v", p.opts.startTimeout())
		case <-p.closed:
			w.EnsureDead()
			return nil, true, errPoolClosed
		}
	}
}
