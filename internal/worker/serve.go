package worker

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"podnas/internal/obs"
	"podnas/internal/obs/span"
	"podnas/internal/search"
)

// ServeOptions configures the worker-side protocol loop.
type ServeOptions struct {
	// Heartbeat is the interval between heartbeat frames (default 1s). The
	// heartbeat goroutine runs independently of the evaluation, so a worker
	// grinding through a long training epoch still proves liveness; only a
	// truly dead or wedged process goes silent.
	Heartbeat time.Duration
	// Lease and Epoch are the fencing tokens from the connection handshake,
	// stamped into every frame this serve loop sends so the driver can drop
	// frames from a superseded attachment. Pipe workers leave them zero and
	// the pipe wire format is unchanged (zero fields are omitted).
	Lease uint64
	Epoch int
}

func (o ServeOptions) heartbeat() time.Duration {
	if o.Heartbeat > 0 {
		return o.Heartbeat
	}
	return time.Second
}

// Serve runs the worker side of the protocol: announce readiness, heartbeat
// periodically, and execute eval requests one at a time against eval,
// preferring the context-aware path so cancel frames interrupt training at
// the next epoch boundary. Serve returns nil on a shutdown frame or when in
// closes (the supervisor died; there is no one left to serve).
func Serve(in io.Reader, out io.Writer, eval search.Evaluator, opts ServeOptions) error {
	return serveFrames(newFrameReader(in), newFrameWriter(out), eval, opts)
}

// serveFrames is Serve on pre-built frame codecs, so the agent handshake
// can hand over its reader without losing frames its scanner already
// buffered.
func serveFrames(r *frameReader, fw *frameWriter, eval search.Evaluator, opts ServeOptions) error {
	w := &stampedWriter{fw: fw, lease: opts.Lease, epoch: opts.Epoch}
	if err := w.send(Message{Type: MsgReady}); err != nil {
		return fmt.Errorf("worker: sending ready: %w", err)
	}

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(opts.heartbeat())
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				// A write error means the supervisor is gone; the reader
				// loop will see EOF and exit, so just stop beating.
				if w.send(Message{Type: MsgHeartbeat}) != nil {
					return
				}
			}
		}
	}()

	var (
		mu      sync.Mutex
		running uint64             // id of the in-flight evaluation
		cancel  context.CancelFunc // cancels it
		busy    bool
	)
	for {
		m, err := r.next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		switch m.Type {
		case MsgShutdown:
			return nil
		case MsgCancel:
			mu.Lock()
			if busy && running == m.ID && cancel != nil {
				cancel()
			}
			mu.Unlock()
		case MsgEval:
			mu.Lock()
			if busy {
				// Protocol violation guard: the supervisor dispatches one
				// evaluation at a time, so refuse rather than interleave.
				mu.Unlock()
				w.send(Message{Type: MsgResult, ID: m.ID, Err: "worker busy", Transient: true})
				continue
			}
			ctx, cf := context.WithCancel(context.Background())
			running, cancel, busy = m.ID, cf, true
			mu.Unlock()
			go func(m Message, ctx context.Context, cf context.CancelFunc) {
				res := runEval(ctx, eval, m, w)
				cf()
				mu.Lock()
				busy, cancel = false, nil
				mu.Unlock()
				w.send(res)
			}(m, ctx, cf)
		}
	}
}

// stampedWriter stamps the serve loop's lease and epoch into every outbound
// frame before handing it to the shared frameWriter.
type stampedWriter struct {
	fw    *frameWriter
	lease uint64
	epoch int
}

func (w *stampedWriter) send(m Message) error {
	m.Lease, m.Epoch = w.lease, w.epoch
	return w.fw.send(m)
}

// frameRecorder bridges the obs layer to the wire: span events produced in
// this worker process (nn.Train epoch spans via the planted recorder) are
// shipped as span frames; every other kind is local telemetry with no
// driver-side meaning, so it is dropped rather than forwarded.
type frameRecorder struct {
	w *stampedWriter
}

func (f frameRecorder) Record(e obs.Event) {
	if e.Kind != obs.KindSpan {
		return
	}
	tr, err1 := span.ParseID(e.Trace)
	sp, err2 := span.ParseID(e.Span)
	if err1 != nil || err2 != nil {
		return
	}
	// Send errors mean the driver is gone; the serve loop is already on its
	// way out, and spans are telemetry, not state.
	_ = f.w.send(Message{
		Type:       MsgSpan,
		Trace:      span.Context{Trace: tr, Span: sp}.Encode(),
		Parent:     e.Parent,
		Name:       e.Name,
		Seconds:    e.Seconds,
		TrainEpoch: e.Epoch,
	})
}

// runEval executes one evaluation with panic recovery and encodes the
// outcome as a result frame. When the eval frame carries a span context
// (the driver negotiated the trace capability), the worker derives a
// "train" span covering the whole evaluation, plants it plus a
// frame-shipping recorder into the evaluation context so nn.Train's epoch
// spans reach the driver, and sends the train span before the result.
func runEval(ctx context.Context, eval search.Evaluator, m Message, w *stampedWriter) (res Message) {
	res = Message{Type: MsgResult, ID: m.ID}
	defer func() {
		if r := recover(); r != nil {
			pe := &search.PanicError{Value: r}
			res.Reward, res.Err, res.Transient = 0, pe.Error(), false
		}
	}()
	if sc, err := span.Decode(m.Trace); m.Trace != "" && err == nil {
		train := span.Derive(sc, "train", m.ID)
		ctx = span.With(obs.WithEval(ctx, frameRecorder{w: w}, 0), train)
		t0 := time.Now()
		defer func() {
			f := frameRecorder{w: w}
			f.Record(span.End(train, sc.Span, "train", time.Since(t0)))
		}()
	}
	var (
		reward float64
		err    error
	)
	if ce, ok := eval.(search.ContextEvaluator); ok {
		reward, err = ce.EvaluateCtx(ctx, m.Arch, m.Seed)
	} else {
		reward, err = eval.Evaluate(m.Arch, m.Seed)
	}
	if err != nil {
		res.Err = err.Error()
		res.Transient = errors.Is(err, search.ErrTransient)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// A cancelled evaluation is re-dispatched or abandoned by the
			// supervisor, never recorded; mark it transient so nothing
			// downstream mistakes it for a permanent failure.
			res.Transient = true
		}
		return res
	}
	if math.IsNaN(reward) || math.IsInf(reward, 0) {
		reward = search.DivergedReward // JSON cannot carry non-finite floats
	}
	res.Reward = reward
	return res
}
