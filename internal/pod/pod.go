// Package pod implements proper orthogonal decomposition (POD, also known as
// principal component analysis) via the method of snapshots, following §II-B
// of Maulik et al. (SC 2020).
//
// Given Ns snapshots of an Nh-dimensional field arranged column-wise in a
// snapshot matrix S (mean removed), the method solves the Ns×Ns eigenvalue
// problem on the correlation matrix C = SᵀS, builds the basis ϑ = SW, and
// truncates it to the leading Nr modes. Coefficients A = ψᵀS evolve in time
// and are what the POD-LSTM forecasts.
package pod

import (
	"fmt"
	"math"

	"podnas/internal/linalg"
	"podnas/internal/tensor"
)

// Basis is a truncated POD basis computed from training snapshots.
type Basis struct {
	// Phi is the Nh×Nr orthonormal reduced basis ψ.
	Phi *tensor.Matrix
	// Mean is the Nh-vector temporal mean removed from the snapshots.
	Mean []float64
	// Eigenvalues holds all Ns correlation-matrix eigenvalues, descending.
	// They measure the energy captured by each mode.
	Eigenvalues []float64
	// Nr is the number of retained modes (columns of Phi).
	Nr int
}

// Compute builds a POD basis from the snapshot matrix s, whose columns are
// snapshots (s is Nh×Ns). nr is the number of modes to retain; it must be in
// [1, Ns]. The snapshot mean is removed internally; s is not modified.
func Compute(s *tensor.Matrix, nr int) (*Basis, error) {
	nh, ns := s.Rows, s.Cols
	if ns == 0 || nh == 0 {
		return nil, fmt.Errorf("pod: empty snapshot matrix %dx%d", nh, ns)
	}
	if nr < 1 || nr > ns {
		return nil, fmt.Errorf("pod: nr=%d out of range [1, %d]", nr, ns)
	}
	// Reject non-finite inputs at the boundary: a single NaN snapshot entry
	// poisons the correlation matrix and the eigensolver degrades into
	// nonsense (or an opaque convergence failure) far from the real cause.
	for i, v := range s.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("pod: snapshot matrix has non-finite value %g at row %d, column %d", v, i/ns, i%ns)
		}
	}

	mean := s.RowMeans()
	centered := tensor.NewMatrix(nh, ns)
	for i := 0; i < nh; i++ {
		row := s.Row(i)
		out := centered.Row(i)
		m := mean[i]
		for j, v := range row {
			out[j] = v - m
		}
	}

	// Method of snapshots: C = SᵀS (Ns×Ns), C W = W Λ.
	corr := tensor.Gram(centered)
	eig, err := linalg.SymEigen(corr)
	if err != nil {
		return nil, fmt.Errorf("pod: eigendecomposition failed: %w", err)
	}

	// ϑ = S W; normalize each retained column. The eigenvalue λ_j equals the
	// squared norm of column j of SW, so the normalizer is 1/sqrt(λ_j).
	phi := tensor.NewMatrix(nh, nr)
	for j := 0; j < nr; j++ {
		lambda := eig.Values[j]
		if lambda <= 0 {
			return nil, fmt.Errorf("pod: mode %d has nonpositive energy %g; reduce nr", j, lambda)
		}
		inv := 1 / math.Sqrt(lambda)
		for i := 0; i < nh; i++ {
			var v float64
			row := centered.Row(i)
			for k := 0; k < ns; k++ {
				v += row[k] * eig.Vectors.At(k, j)
			}
			phi.Set(i, j, v*inv)
		}
	}

	return &Basis{Phi: phi, Mean: mean, Eigenvalues: eig.Values, Nr: nr}, nil
}

// Project computes the coefficient matrix A = ψᵀ(S - mean) for the snapshot
// matrix s (Nh×Ns). The result is Nr×Ns: row r holds the time series of POD
// mode r. Works for both training and unseen (test) snapshots.
func (b *Basis) Project(s *tensor.Matrix) *tensor.Matrix {
	if s.Rows != b.Phi.Rows {
		panic(fmt.Sprintf("pod: Project snapshot dim %d != basis dim %d", s.Rows, b.Phi.Rows))
	}
	centered := tensor.NewMatrix(s.Rows, s.Cols)
	for i := 0; i < s.Rows; i++ {
		m := b.Mean[i]
		src := s.Row(i)
		dst := centered.Row(i)
		for j, v := range src {
			dst[j] = v - m
		}
	}
	return tensor.MatMulTransA(b.Phi, centered)
}

// Reconstruct maps coefficients A (Nr×Nt) back to physical space, adding the
// mean: Ŝ = ψA + mean. The result is Nh×Nt.
func (b *Basis) Reconstruct(a *tensor.Matrix) *tensor.Matrix {
	if a.Rows != b.Nr {
		panic(fmt.Sprintf("pod: Reconstruct coefficient rows %d != Nr %d", a.Rows, b.Nr))
	}
	out := tensor.MatMul(b.Phi, a)
	for i := 0; i < out.Rows; i++ {
		m := b.Mean[i]
		row := out.Row(i)
		for j := range row {
			row[j] += m
		}
	}
	return out
}

// ReconstructSnapshot maps a single Nr-coefficient vector to an Nh field.
func (b *Basis) ReconstructSnapshot(coef []float64) []float64 {
	if len(coef) != b.Nr {
		panic(fmt.Sprintf("pod: ReconstructSnapshot got %d coefficients, want %d", len(coef), b.Nr))
	}
	nh := b.Phi.Rows
	out := make([]float64, nh)
	for i := 0; i < nh; i++ {
		row := b.Phi.Row(i)
		var v float64
		for j, c := range coef {
			v += row[j] * c
		}
		out[i] = v + b.Mean[i]
	}
	return out
}

// EnergyFraction returns the fraction of total energy (sum of eigenvalues)
// captured by the leading nr modes — the variance-captured diagnostic the
// paper uses to justify Nr = 5 (~92%).
func (b *Basis) EnergyFraction(nr int) float64 {
	if nr < 0 {
		nr = 0
	}
	if nr > len(b.Eigenvalues) {
		nr = len(b.Eigenvalues)
	}
	var total, lead float64
	for i, v := range b.Eigenvalues {
		if v < 0 {
			v = 0 // clip numerically negative tail modes
		}
		total += v
		if i < nr {
			lead += v
		}
	}
	//podnas:allow floateq exact zero-energy guard before dividing
	if total == 0 {
		return 0
	}
	return lead / total
}

// ProjectionError returns the relative squared projection error of
// reconstructing the snapshots s with the truncated basis:
//
//	Σᵢ ||q̂ᵢ − q̃ᵢ||² / Σᵢ ||q̂ᵢ||²
//
// where q̂ are the mean-removed snapshots and q̃ their rank-Nr POD
// approximations. On the training set this equals the eigenvalue tail ratio
// Σ_{i>Nr} λᵢ / Σᵢ λᵢ (the paper's Eq. 8 with energies λ rather than λ²; the
// identity is exercised by tests).
func (b *Basis) ProjectionError(s *tensor.Matrix) float64 {
	coeff := b.Project(s)
	recon := b.Reconstruct(coeff)
	var num, den float64
	for i := 0; i < s.Rows; i++ {
		m := b.Mean[i]
		srow := s.Row(i)
		rrow := recon.Row(i)
		for j, v := range srow {
			d := v - rrow[j]
			num += d * d
			c := v - m
			den += c * c
		}
	}
	//podnas:allow floateq exact zero-energy guard before dividing
	if den == 0 {
		return 0
	}
	return num / den
}

// EigenvalueTailRatio returns Σ_{i>=nr} λᵢ / Σᵢ λᵢ, the analytic training-set
// projection error for a rank-nr truncation.
func (b *Basis) EigenvalueTailRatio(nr int) float64 {
	var total, tail float64
	for i, v := range b.Eigenvalues {
		if v < 0 {
			v = 0
		}
		total += v
		if i >= nr {
			tail += v
		}
	}
	//podnas:allow floateq exact zero-energy guard before dividing
	if total == 0 {
		return 0
	}
	return tail / total
}
