package pod

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"podnas/internal/tensor"
)

// lowRankSnapshots builds Nh×Ns snapshots that are exactly rank `rank` plus
// the mean, so a rank-`rank` POD must reconstruct them to machine precision.
func lowRankSnapshots(rng *tensor.RNG, nh, ns, rank int) *tensor.Matrix {
	u := tensor.NewMatrix(nh, rank)
	v := tensor.NewMatrix(rank, ns)
	rng.FillNormal(u.Data, 1)
	rng.FillNormal(v.Data, 1)
	s := tensor.MatMul(u, v)
	for i := 0; i < nh; i++ {
		off := rng.NormFloat64()
		row := s.Row(i)
		for j := range row {
			row[j] += off
		}
	}
	return s
}

func TestComputeValidation(t *testing.T) {
	s := tensor.NewMatrix(4, 3)
	if _, err := Compute(s, 0); err == nil {
		t.Error("nr=0 should error")
	}
	if _, err := Compute(s, 4); err == nil {
		t.Error("nr>Ns should error")
	}
	if _, err := Compute(tensor.NewMatrix(0, 0), 1); err == nil {
		t.Error("empty snapshots should error")
	}
}

func TestExactReconstructionOfLowRankData(t *testing.T) {
	rng := tensor.NewRNG(1)
	s := lowRankSnapshots(rng, 40, 12, 3)
	b, err := Compute(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	coeff := b.Project(s)
	recon := b.Reconstruct(coeff)
	if !recon.Equal(s, 1e-8) {
		t.Error("rank-3 basis failed to reconstruct rank-3 data")
	}
	if e := b.ProjectionError(s); e > 1e-16 {
		t.Errorf("projection error %g, want ~0", e)
	}
}

func TestBasisOrthonormal(t *testing.T) {
	rng := tensor.NewRNG(2)
	s := tensor.NewMatrix(30, 10)
	rng.FillNormal(s.Data, 1)
	b, err := Compute(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := tensor.MatMulTransA(b.Phi, b.Phi)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(g.At(i, j)-want) > 1e-9 {
				t.Fatalf("ψᵀψ(%d,%d) = %g", i, j, g.At(i, j))
			}
		}
	}
}

func TestEigenvaluesDescendingNonnegative(t *testing.T) {
	rng := tensor.NewRNG(3)
	s := tensor.NewMatrix(25, 8)
	rng.FillNormal(s.Data, 1)
	b, err := Compute(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range b.Eigenvalues {
		if v < -1e-8 {
			t.Errorf("eigenvalue %d = %g < 0", i, v)
		}
		if i > 0 && v > b.Eigenvalues[i-1]+1e-10 {
			t.Errorf("eigenvalues not descending at %d", i)
		}
	}
}

func TestProjectionErrorMatchesEigenTail(t *testing.T) {
	// Paper Eq. 8: training projection error equals the eigenvalue tail ratio.
	rng := tensor.NewRNG(4)
	s := tensor.NewMatrix(50, 15)
	rng.FillNormal(s.Data, 1)
	for nr := 1; nr <= 10; nr += 3 {
		b, err := Compute(s, nr)
		if err != nil {
			t.Fatal(err)
		}
		got := b.ProjectionError(s)
		want := b.EigenvalueTailRatio(nr)
		if math.Abs(got-want) > 1e-8 {
			t.Errorf("nr=%d: projection error %g != eigen tail %g", nr, got, want)
		}
	}
}

func TestEnergyFractionMonotone(t *testing.T) {
	rng := tensor.NewRNG(5)
	s := tensor.NewMatrix(20, 9)
	rng.FillNormal(s.Data, 1)
	b, err := Compute(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for nr := 0; nr <= 9; nr++ {
		e := b.EnergyFraction(nr)
		if e < prev-1e-12 {
			t.Errorf("energy fraction decreased at nr=%d", nr)
		}
		if e < 0 || e > 1+1e-12 {
			t.Errorf("energy fraction out of range: %g", e)
		}
		prev = e
	}
	if math.Abs(b.EnergyFraction(9)-1) > 1e-9 {
		t.Errorf("full-rank energy fraction = %g, want 1", b.EnergyFraction(9))
	}
}

func TestProjectReconstructSingleSnapshot(t *testing.T) {
	rng := tensor.NewRNG(6)
	s := lowRankSnapshots(rng, 15, 8, 2)
	b, err := Compute(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	coeff := b.Project(s)
	// Column 3 via ReconstructSnapshot must match full Reconstruct.
	single := make([]float64, 2)
	for r := 0; r < 2; r++ {
		single[r] = coeff.At(r, 3)
	}
	field := b.ReconstructSnapshot(single)
	full := b.Reconstruct(coeff)
	for i := 0; i < 15; i++ {
		if math.Abs(field[i]-full.At(i, 3)) > 1e-12 {
			t.Fatalf("single-snapshot reconstruction differs at %d", i)
		}
	}
}

func TestMoreModesNeverWorse(t *testing.T) {
	// Property: projection error is nonincreasing in nr.
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		nh := 10 + rng.Intn(20)
		ns := 5 + rng.Intn(8)
		s := tensor.NewMatrix(nh, ns)
		rng.FillNormal(s.Data, 1)
		prev := math.Inf(1)
		for nr := 1; nr < ns; nr++ {
			b, err := Compute(s, nr)
			if err != nil {
				return false
			}
			e := b.ProjectionError(s)
			if e > prev+1e-9 {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestProjectUnseenSnapshots(t *testing.T) {
	// Basis built on train; test snapshots from the same subspace must also
	// be reconstructed exactly.
	rng := tensor.NewRNG(7)
	u := tensor.NewMatrix(30, 3)
	rng.FillNormal(u.Data, 1)
	vTrain := tensor.NewMatrix(3, 10)
	vTest := tensor.NewMatrix(3, 6)
	rng.FillNormal(vTrain.Data, 1)
	rng.FillNormal(vTest.Data, 1)
	train := tensor.MatMul(u, vTrain)
	test := tensor.MatMul(u, vTest)
	b, err := Compute(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Test snapshots have zero mean offset relative to training mean only in
	// the subspace sense; reconstruct and compare after projecting both ways.
	recon := b.Reconstruct(b.Project(test))
	// The residual is the component of (test - trainMean) outside span(Phi);
	// since columns of test lie in span(u)=span(Phi) and the train mean also
	// lies in that span (it is an average of in-span columns), the error ~ 0.
	if !recon.Equal(test, 1e-7) {
		t.Error("unseen in-subspace snapshots not reconstructed")
	}
}

func TestCoefficientsOfTrainingDataHaveZeroMean(t *testing.T) {
	rng := tensor.NewRNG(8)
	s := tensor.NewMatrix(20, 12)
	rng.FillNormal(s.Data, 1)
	b, err := Compute(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := b.Project(s)
	for r := 0; r < 4; r++ {
		var mean float64
		for j := 0; j < 12; j++ {
			mean += a.At(r, j)
		}
		mean /= 12
		if math.Abs(mean) > 1e-9 {
			t.Errorf("mode %d coefficient mean %g, want 0", r, mean)
		}
	}
}

func TestEnergyFractionClamps(t *testing.T) {
	rng := tensor.NewRNG(9)
	s := tensor.NewMatrix(10, 6)
	rng.FillNormal(s.Data, 1)
	b, err := Compute(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.EnergyFraction(-3) != 0 {
		t.Error("negative nr should clamp to 0 energy")
	}
	if got := b.EnergyFraction(100); got < 0.999 {
		t.Errorf("overlarge nr should clamp to full energy, got %g", got)
	}
}

func TestReconstructPanicsOnWrongRows(t *testing.T) {
	rng := tensor.NewRNG(10)
	s := tensor.NewMatrix(10, 6)
	rng.FillNormal(s.Data, 1)
	b, _ := Compute(s, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b.Reconstruct(tensor.NewMatrix(3, 4))
}

func TestProjectPanicsOnWrongDim(t *testing.T) {
	rng := tensor.NewRNG(11)
	s := tensor.NewMatrix(10, 6)
	rng.FillNormal(s.Data, 1)
	b, _ := Compute(s, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b.Project(tensor.NewMatrix(11, 6))
}

func TestReconstructSnapshotPanicsOnWrongLen(t *testing.T) {
	rng := tensor.NewRNG(12)
	s := tensor.NewMatrix(10, 6)
	rng.FillNormal(s.Data, 1)
	b, _ := Compute(s, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b.ReconstructSnapshot([]float64{1})
}

func TestComputeRejectsRankDeficientTail(t *testing.T) {
	// Duplicate snapshots: requesting nr beyond the true rank must error
	// (nonpositive mode energy) rather than divide by ~0.
	s := tensor.NewMatrix(8, 4)
	rng := tensor.NewRNG(13)
	col := make([]float64, 8)
	rng.FillNormal(col, 1)
	for j := 0; j < 4; j++ {
		for i := 0; i < 8; i++ {
			s.Set(i, j, col[i]) // all columns identical
		}
	}
	if _, err := Compute(s, 2); err == nil {
		t.Error("rank-0 centered snapshots should reject nr=2")
	}
}

func TestComputeRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		s := lowRankSnapshots(tensor.NewRNG(3), 6, 5, 3)
		s.Set(2, 1, bad)
		if _, err := Compute(s, 2); err == nil {
			t.Errorf("Compute accepted snapshot matrix containing %g", bad)
		} else if !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("error %q does not mention non-finite input", err)
		}
	}
}
