package sst

import (
	"fmt"
	"math"
)

// Region is a latitude/longitude box.
type Region struct {
	LatMin, LatMax float64
	LonMin, LonMax float64 // degrees east; LonMin < LonMax, no wrap
}

// EasternPacific is the paper's Table I evaluation box: -10..+10 degrees
// latitude, 200..250 degrees longitude.
var EasternPacific = Region{LatMin: -10, LatMax: 10, LonMin: 200, LonMax: 250}

// RegionOceanIndices returns the positions (into the flattened ocean vector)
// of all ocean points inside the region.
func (d *Dataset) RegionOceanIndices(r Region) []int {
	var out []int
	c := d.Cfg
	for i, g := range d.OceanIdx {
		lat := c.Lat(g / c.LonN)
		lon := c.Lon(g % c.LonN)
		if lat >= r.LatMin && lat <= r.LatMax && lon >= r.LonMin && lon <= r.LonMax {
			out = append(out, i)
		}
	}
	return out
}

// ProbeIndex returns the flattened-ocean index of the grid cell containing
// (lat, lon), or an error if that cell is land.
func (d *Dataset) ProbeIndex(lat, lon float64) (int, error) {
	c := d.Cfg
	g := c.LatIndex(lat)*c.LonN + c.LonIndex(lon)
	o := d.GridToOcean[g]
	if o < 0 {
		return 0, fmt.Errorf("sst: probe (%.1f, %.1f) is on land", lat, lon)
	}
	return o, nil
}

// Probe extracts the time series of the truth at (lat, lon) over the
// snapshot index range [lo, hi).
func (d *Dataset) Probe(lat, lon float64, lo, hi int) ([]float64, error) {
	idx, err := d.ProbeIndex(lat, lon)
	if err != nil {
		return nil, err
	}
	out := make([]float64, hi-lo)
	for t := lo; t < hi; t++ {
		out[t-lo] = d.Snapshots.At(idx, t)
	}
	return out, nil
}

// ToGrid scatters a flattened ocean vector back onto the LatN×LonN grid.
// Land cells get NaN.
func (d *Dataset) ToGrid(field []float64) [][]float64 {
	if len(field) != d.Nh() {
		panic(fmt.Sprintf("sst: ToGrid got %d values, want %d", len(field), d.Nh()))
	}
	c := d.Cfg
	grid := make([][]float64, c.LatN)
	for li := range grid {
		row := make([]float64, c.LonN)
		for lj := range row {
			row[lj] = math.NaN()
		}
		grid[li] = row
	}
	for i, g := range d.OceanIdx {
		grid[g/c.LonN][g%c.LonN] = field[i]
	}
	return grid
}

// RegionRMSE computes the RMSE between pred and the truth at week t,
// restricted to the given ocean-index subset.
func (d *Dataset) RegionRMSE(pred []float64, t int, idx []int) float64 {
	if len(idx) == 0 {
		return math.NaN()
	}
	var s float64
	for _, i := range idx {
		diff := pred[i] - d.Snapshots.At(i, t)
		s += diff * diff
	}
	return math.Sqrt(s / float64(len(idx)))
}

// OceanFraction returns the fraction of grid cells that are ocean.
func (d *Dataset) OceanFraction() float64 {
	return float64(d.Nh()) / float64(d.Cfg.LatN*d.Cfg.LonN)
}
