package sst

import (
	"runtime"
	"sync"
	"time"
)

// parallelRows runs body(i) for i in [0, n) across GOMAXPROCS workers.
func parallelRows(n int, body func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// CESMField returns the CESM-surrogate forecast field (flattened ocean
// points) for week t. The surrogate is a free-running process model: it
// shares the climatology, seasonal cycle, and warming trend with the truth
// but has independent internal variability (its own ENSO phase and eddies),
// a static warm bias, and interpolation-like noise. Its phase-unaligned
// variability plus bias yield a regional RMSE near the paper's ~1.85 °C.
func (d *Dataset) CESMField(t int) []float64 {
	years, frac := d.yearFrac(t)
	out := make([]float64, d.Nh())
	for i := range out {
		v := d.clim[i] + d.cesmBias[i] +
			0.92*seasonalTerm(d.seasAmp[i], frac, d.seasPeak[i], d.hemi[i], d.cesmEnv[t], d.cesmEnvPhase[t]) +
			d.trendRate[i]*years +
			d.cesmEnso[t]*d.ensoPat[i]
		prow := d.eddyPat.Row(i)
		for p, pv := range prow {
			v += 0.85 * pv * d.cesmCoef.At(p, t)
		}
		out[i] = v + 0.22*hashNorm(d.Cfg.Seed, streamCESM, i, t)
	}
	return out
}

// HYCOMField returns the HYCOM-surrogate forecast field for week t at the
// given forecast lead (in weeks, ≥1). HYCOM is a short-term data-assimilating
// model: its forecast tracks the truth closely with an error that grows
// slowly with lead, plus a small interpolation penalty from regridding the
// 1/12-degree model output onto the coarse grid. Calibrated to the paper's
// ~1.0 °C regional RMSE.
func (d *Dataset) HYCOMField(t, lead int) []float64 {
	if lead < 1 {
		lead = 1
	}
	sigma := 0.93 + 0.012*float64(lead)
	out := make([]float64, d.Nh())
	for i := range out {
		truth := d.Snapshots.At(i, t)
		out[i] = truth + sigma*hashNorm(d.Cfg.Seed, streamHYCOM+uint64(lead)*29, i, t)
	}
	return out
}

// HYCOMStart and HYCOMEnd bound the HYCOM data availability window used by
// the paper's Table I (April 5, 2015 through June 24, 2018).
var (
	HYCOMStart = time.Date(2015, 4, 5, 0, 0, 0, 0, time.UTC)
	HYCOMEnd   = time.Date(2018, 6, 24, 0, 0, 0, 0, time.UTC)
)

// HYCOMRange returns the snapshot index range [lo, hi) whose dates fall in
// the HYCOM availability window. For short synthetic records the window is
// empty; callers should fall back to the full test period.
func (d *Dataset) HYCOMRange() (lo, hi int) {
	lo, hi = -1, -1
	for t, date := range d.Dates {
		if !date.Before(HYCOMStart) && lo == -1 {
			lo = t
		}
		if !date.After(HYCOMEnd) {
			hi = t + 1
		}
	}
	if lo == -1 || hi <= lo {
		return 0, 0
	}
	return lo, hi
}

// IndexOfDate returns the index of the latest snapshot on or before date,
// or -1 if the date precedes the record.
func (d *Dataset) IndexOfDate(date time.Time) int {
	idx := -1
	for t, dd := range d.Dates {
		if dd.After(date) {
			break
		}
		idx = t
	}
	return idx
}
