package sst

import (
	"math"
	"testing"
	"time"

	"podnas/internal/metrics"
	"podnas/internal/pod"
	"podnas/internal/tensor"
)

func small(t *testing.T) *Dataset {
	t.Helper()
	d, err := Generate(Small())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{LonN: 4, LatN: 4, Weeks: 10},
		{LonN: 60, LatN: 30, Weeks: 1},
		{LonN: 60, LatN: 30, Weeks: 10, NoiseSigma: -1},
		{LonN: 60, LatN: 30, Weeks: 10, EddyPatterns: -2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if err := Small().Validate(); err != nil {
		t.Errorf("Small config invalid: %v", err)
	}
}

func TestGridCoordinateRoundTrip(t *testing.T) {
	c := Default()
	for _, lat := range []float64{-89, -45.5, 0.3, 33, 89} {
		i := c.LatIndex(lat)
		if got := c.Lat(i); math.Abs(got-lat) > 180/float64(c.LatN) {
			t.Errorf("lat %g maps to cell center %g", lat, got)
		}
	}
	for _, lon := range []float64{0.1, 100, 359.9, -20, 380} {
		j := c.LonIndex(lon)
		if j < 0 || j >= c.LonN {
			t.Errorf("lon %g index %d out of range", lon, j)
		}
	}
}

func TestLonDistWraps(t *testing.T) {
	if d := lonDist(350, 10); math.Abs(d-20) > 1e-12 {
		t.Errorf("lonDist(350,10) = %g, want 20", d)
	}
	if d := lonDist(0, 180); math.Abs(d-180) > 1e-12 {
		t.Errorf("lonDist(0,180) = %g", d)
	}
}

func TestOceanFractionRealistic(t *testing.T) {
	d := small(t)
	f := d.OceanFraction()
	if f < 0.5 || f > 0.85 {
		t.Errorf("ocean fraction %.2f outside plausible range", f)
	}
}

func TestEasternPacificIsOcean(t *testing.T) {
	d := small(t)
	idx := d.RegionOceanIndices(EasternPacific)
	// The paper's evaluation box must be open ocean on any grid.
	wantCells := int(20.0 * 50.0 / (180 / float64(d.Cfg.LatN)) / (360 / float64(d.Cfg.LonN)))
	if len(idx) < wantCells*8/10 {
		t.Errorf("Eastern Pacific has only %d ocean cells, expected ~%d", len(idx), wantCells)
	}
	// All three Fig 7 probe locations must be ocean.
	for _, p := range [][2]float64{{-5, 210}, {5, 250}, {10, 230}} {
		if _, err := d.ProbeIndex(p[0], p[1]); err != nil {
			t.Errorf("probe %v: %v", p, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := small(t)
	b := small(t)
	if !a.Snapshots.Equal(b.Snapshots, 0) {
		t.Error("same config generated different snapshots")
	}
	// Comparators must also be deterministic.
	ca := a.CESMField(10)
	cb := b.CESMField(10)
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatal("CESM fields differ between identical datasets")
		}
	}
	ha := a.HYCOMField(10, 3)
	hb := b.HYCOMField(10, 3)
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatal("HYCOM fields differ between identical datasets")
		}
	}
}

func TestSeedChangesData(t *testing.T) {
	cfg := Small()
	a, _ := Generate(cfg)
	cfg.Seed++
	b, _ := Generate(cfg)
	if a.Snapshots.Equal(b.Snapshots, 1e-9) {
		t.Error("different seeds produced identical data")
	}
}

func TestTemperatureRangePhysical(t *testing.T) {
	d := small(t)
	for _, v := range d.Snapshots.Data {
		if v < -8 || v > 42 {
			t.Fatalf("temperature %g outside physical bounds", v)
		}
	}
}

func TestEquatorWarmerThanPoles(t *testing.T) {
	d := small(t)
	eq, err := d.Probe(0, 210, 0, d.Weeks())
	if err != nil {
		t.Fatal(err)
	}
	hi, err := d.Probe(62, 210, 0, d.Weeks())
	if err != nil {
		t.Fatal(err)
	}
	me, _ := metrics.MeanStd(eq)
	mh, _ := metrics.MeanStd(hi)
	if me < mh+8 {
		t.Errorf("equator mean %.1f not clearly warmer than 62N mean %.1f", me, mh)
	}
}

func TestSeasonalCycleOppositePhases(t *testing.T) {
	// Correlation between a NH and a SH mid-latitude probe's anomalies must
	// be strongly negative (opposite seasonal phase).
	d := small(t)
	nh, err := d.Probe(40, 190, 0, d.Weeks())
	if err != nil {
		t.Fatal(err)
	}
	sh, err := d.Probe(-40, 190, 0, d.Weeks())
	if err != nil {
		t.Fatal(err)
	}
	if c := correlation(nh, sh); c > -0.5 {
		t.Errorf("NH/SH seasonal correlation %.2f, want strongly negative", c)
	}
}

func correlation(a, b []float64) float64 {
	ma, sa := metrics.MeanStd(a)
	mb, sb := metrics.MeanStd(b)
	var c float64
	for i := range a {
		c += (a[i] - ma) * (b[i] - mb)
	}
	return c / float64(len(a)) / (sa * sb)
}

func TestWarmingTrendPresent(t *testing.T) {
	// Secular warming check that is robust to the chaotic seasonal envelope:
	// pair each week with the week exactly 8 years (417 weeks ≈ 2920 days)
	// later; the seasonal carrier cancels in the difference, eddies and the
	// envelope average out over all pairs and ocean points, leaving the
	// trend. Uses a 16-year record so the lag fits.
	cfg := Small()
	cfg.Weeks = 840
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const lag = 417 // ≈ 7.99 years in weeks: same seasonal phase
	var sum float64
	n := 0
	for w := 0; w+lag < d.Weeks(); w++ {
		for i := 0; i < d.Nh(); i++ {
			sum += d.Snapshots.At(i, w+lag) - d.Snapshots.At(i, w)
		}
		n += d.Nh()
	}
	years := float64(lag) * 7 / 365.25
	slope := sum / float64(n) / years
	if slope < 0.004 || slope > 0.06 {
		t.Errorf("global warming slope %.4f degC/yr outside expected band", slope)
	}
}

func TestNumTrainFullCalendar(t *testing.T) {
	// With the real calendar the training split is exactly 427 snapshots.
	cfg := Default()
	cfg.Weeks = 1914
	d := &Dataset{Cfg: cfg}
	d.buildDates()
	n := 0
	for _, date := range d.Dates {
		if date.After(TrainEndDate) {
			break
		}
		n++
	}
	if n != 427 {
		t.Errorf("full-calendar training snapshots = %d, want 427 (paper)", n)
	}
}

func TestNumTrainShortRecord(t *testing.T) {
	d := small(t)
	n := d.NumTrain()
	if n <= 0 || n >= d.Weeks() {
		t.Errorf("short-record split %d of %d leaves no test data", n, d.Weeks())
	}
}

func TestTrainTestSnapshotsPartition(t *testing.T) {
	d := small(t)
	tr := d.TrainSnapshots()
	te := d.TestSnapshots()
	if tr.Cols+te.Cols != d.Weeks() {
		t.Errorf("train %d + test %d != weeks %d", tr.Cols, te.Cols, d.Weeks())
	}
	if tr.At(0, 0) != d.Snapshots.At(0, 0) {
		t.Error("train snapshot 0 mismatch")
	}
	if te.At(0, 0) != d.Snapshots.At(0, tr.Cols) {
		t.Error("test snapshot 0 mismatch")
	}
}

func TestPODSpectrumDominatedBySeasonalModes(t *testing.T) {
	// The paper retains Nr=5 modes capturing ~92% of variance; our synthetic
	// data must have the same character: a handful of modes dominating.
	d := small(t)
	basis, err := pod.Compute(d.TrainSnapshots(), 5)
	if err != nil {
		t.Fatal(err)
	}
	frac := basis.EnergyFraction(5)
	if frac < 0.80 || frac > 0.995 {
		t.Errorf("5-mode energy fraction %.3f, want dominant but not total", frac)
	}
	if one := basis.EnergyFraction(1); one < 0.3 {
		t.Errorf("leading mode carries only %.3f of energy", one)
	}
}

func TestCESMFieldBiasedButSeasonal(t *testing.T) {
	d := small(t)
	idx := d.RegionOceanIndices(EasternPacific)
	tw := d.Weeks() / 2
	cesm := d.CESMField(tw)
	rmse := d.RegionRMSE(cesm, tw, idx)
	if rmse < 0.8 || rmse > 3.5 {
		t.Errorf("CESM regional RMSE %.2f outside target band (~1.8)", rmse)
	}
	hycom := d.HYCOMField(tw, 1)
	hrmse := d.RegionRMSE(hycom, tw, idx)
	if hrmse < 0.5 || hrmse > 1.6 {
		t.Errorf("HYCOM regional RMSE %.2f outside target band (~1.0)", hrmse)
	}
	if hrmse >= rmse {
		t.Errorf("HYCOM RMSE %.2f should beat CESM %.2f", hrmse, rmse)
	}
}

func TestHYCOMErrorGrowsWithLead(t *testing.T) {
	d := small(t)
	idx := d.RegionOceanIndices(EasternPacific)
	tw := d.Weeks() / 2
	// Average over several weeks to suppress sampling noise.
	avg := func(lead int) float64 {
		var s float64
		n := 0
		for w := tw; w < tw+20 && w < d.Weeks(); w++ {
			s += d.RegionRMSE(d.HYCOMField(w, lead), w, idx)
			n++
		}
		return s / float64(n)
	}
	if a1, a8 := avg(1), avg(8); a8 <= a1 {
		t.Errorf("HYCOM RMSE lead-8 %.3f not larger than lead-1 %.3f", a8, a1)
	}
}

func TestHYCOMRange(t *testing.T) {
	// Full calendar: the window must be ~168 weeks in 2015–2018.
	cfg := Default()
	d := &Dataset{Cfg: cfg}
	d.buildDates()
	lo, hi := d.HYCOMRange()
	if lo == 0 && hi == 0 {
		t.Fatal("full calendar should intersect the HYCOM window")
	}
	if d.Dates[lo].Before(HYCOMStart) {
		t.Error("range start precedes HYCOM availability")
	}
	if d.Dates[hi-1].After(HYCOMEnd) {
		t.Error("range end exceeds HYCOM availability")
	}
	weeks := hi - lo
	if weeks < 160 || weeks < 150 || weeks > 175 {
		t.Errorf("HYCOM window spans %d weeks, want ~168", weeks)
	}
	// Short test record: empty window.
	s, _ := Generate(Small())
	if lo, hi := s.HYCOMRange(); lo != 0 || hi != 0 {
		t.Errorf("short record HYCOM range = [%d,%d), want empty", lo, hi)
	}
}

func TestIndexOfDate(t *testing.T) {
	cfg := Default()
	d := &Dataset{Cfg: cfg}
	d.buildDates()
	if got := d.IndexOfDate(StartDate); got != 0 {
		t.Errorf("IndexOfDate(start) = %d", got)
	}
	if got := d.IndexOfDate(StartDate.AddDate(0, 0, 13)); got != 1 {
		t.Errorf("IndexOfDate(start+13d) = %d, want 1", got)
	}
	if got := d.IndexOfDate(StartDate.AddDate(0, 0, -1)); got != -1 {
		t.Errorf("IndexOfDate before record = %d, want -1", got)
	}
	// The Fig 6 example week must exist on the full calendar.
	fig6 := time.Date(2015, 6, 14, 0, 0, 0, 0, time.UTC)
	if got := d.IndexOfDate(fig6); got <= 0 || got >= cfg.Weeks {
		t.Errorf("Fig 6 week index %d out of range", got)
	}
}

func TestToGrid(t *testing.T) {
	d := small(t)
	field := d.TruthField(0)
	grid := d.ToGrid(field)
	ocean, land := 0, 0
	for li := range grid {
		for lj := range grid[li] {
			if math.IsNaN(grid[li][lj]) {
				land++
			} else {
				ocean++
			}
		}
	}
	if ocean != d.Nh() {
		t.Errorf("grid has %d ocean cells, want %d", ocean, d.Nh())
	}
	if land == 0 {
		t.Error("grid has no land")
	}
}

func TestRegionRMSEZeroForTruth(t *testing.T) {
	d := small(t)
	idx := d.RegionOceanIndices(EasternPacific)
	if r := d.RegionRMSE(d.TruthField(5), 5, idx); r != 0 {
		t.Errorf("truth-vs-truth RMSE %g, want 0", r)
	}
}

func TestHashNormDeterministicAndDistributed(t *testing.T) {
	if hashNorm(1, 2, 3, 4) != hashNorm(1, 2, 3, 4) {
		t.Error("hashNorm not deterministic")
	}
	var sum, sumSq float64
	n := 20000
	for i := 0; i < n; i++ {
		v := hashNorm(99, 5, i, i*7+1)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 || math.Abs(variance-1) > 0.1 {
		t.Errorf("hashNorm moments: mean %.3f var %.3f", mean, variance)
	}
}

func TestProbeOnLandErrors(t *testing.T) {
	d := small(t)
	// Center of Eurasia ellipse must be land.
	if _, err := d.ProbeIndex(52, 80); err == nil {
		t.Error("expected land error for central Eurasia")
	}
}

func TestSecondHarmonicAntisymmetric(t *testing.T) {
	// The hemisphere-signed second harmonic: with equal amplitude and a
	// positive envelope, the mean-removed seasonal terms at exactly opposite
	// peaks must cancel in the global sum (spatial mean ~ 0), keeping the
	// leading POD modes zero-mean dipoles (DESIGN.md §6.3).
	var sum float64
	n := 0
	for fw := 0; fw < 52; fw++ {
		frac := float64(fw) / 52
		north := seasonalTerm(3.0, frac, 0.67, +1, 0.8, 0.2)
		south := seasonalTerm(3.0, frac, 0.17, -1, 0.8, 0.2)
		sum += north + south
		n++
	}
	if math.Abs(sum/float64(n)) > 0.02 {
		t.Errorf("hemispheric seasonal mean %.4f, want ~0", sum/float64(n))
	}
}

func TestSeasonalPeakVariesWithLatitude(t *testing.T) {
	d := small(t)
	// Peaks must differ across NH latitudes (the quadrature requirement).
	iLo, err := d.ProbeIndex(10, 190)
	if err != nil {
		t.Fatal(err)
	}
	iHi, err := d.ProbeIndex(55, 190)
	if err != nil {
		t.Fatal(err)
	}
	if d.seasPeak[iLo] == d.seasPeak[iHi] {
		t.Error("seasonal peak does not vary with latitude; annual quadrature pair missing")
	}
}

func TestHighPassRemovesSlowDrift(t *testing.T) {
	// A pure linear ramp must be almost entirely removed by highPassRows.
	m := tensorNewRamp(1, 400)
	highPassRows(m)
	var maxAbs float64
	// Ignore the filter's edge transients.
	row := m.Row(0)[50:350]
	var mean float64
	for _, v := range row {
		mean += v
	}
	mean /= float64(len(row))
	for _, v := range row {
		if a := math.Abs(v - mean); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > 0.5 {
		t.Errorf("high-pass left drift of %.3f std units in the interior", maxAbs)
	}
}

// tensorNewRamp builds a rows×cols matrix whose entries increase linearly
// along each row.
func tensorNewRamp(rows, cols int) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		row := m.Row(r)
		for c := range row {
			row[c] = float64(c)
		}
	}
	return m
}

func TestHYCOMLeadClamped(t *testing.T) {
	d := small(t)
	a := d.HYCOMField(10, 0) // clamped to lead 1
	b := d.HYCOMField(10, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("lead 0 should clamp to lead 1")
		}
	}
}

func TestTruthFieldMatchesSnapshots(t *testing.T) {
	d := small(t)
	f := d.TruthField(7)
	for i := range f {
		if f[i] != d.Snapshots.At(i, 7) {
			t.Fatal("TruthField disagrees with the snapshot matrix")
		}
	}
}

func TestRegionRMSEEmptyIndex(t *testing.T) {
	d := small(t)
	if v := d.RegionRMSE(d.TruthField(0), 0, nil); !math.IsNaN(v) {
		t.Errorf("empty-region RMSE = %g, want NaN", v)
	}
}

func TestToGridPanicsOnWrongLength(t *testing.T) {
	d := small(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.ToGrid([]float64{1, 2, 3})
}
