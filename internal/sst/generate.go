package sst

import (
	"math"
	"time"

	"podnas/internal/chaos"
	"podnas/internal/tensor"
)

// Dataset is a generated synthetic SST record plus everything needed to
// evaluate comparator forecasts lazily and deterministically.
type Dataset struct {
	Cfg Config

	// Mask[g] is true when flattened grid index g (latIdx*LonN + lonIdx) is
	// ocean. OceanIdx lists the ocean grid indices in order; GridToOcean maps
	// a grid index to its position in the flattened ocean vector (-1 = land).
	Mask        []bool
	OceanIdx    []int
	GridToOcean []int

	// Dates[t] is the date of snapshot t (weekly from StartDate).
	Dates []time.Time

	// Snapshots is the Nh×Weeks truth matrix: column t is the flattened
	// ocean-point temperature field for week t (°C).
	Snapshots *tensor.Matrix

	// Per-ocean-point static fields (length Nh).
	clim      []float64 // latitude climatology
	seasAmp   []float64 // seasonal amplitude
	seasPeak  []float64 // seasonal phase (fraction of year at maximum)
	hemi      []float64 // hemisphere sign (+1 north, -1 south)
	trendRate []float64 // warming °C per year
	ensoPat   []float64 // ENSO spatial pattern

	// Temporal drivers (length Weeks).
	enso []float64
	// env and envPhase are chaotic seasonal-envelope processes (Lorenz-96
	// components, unit variance): env modulates the seasonal cycle's
	// amplitude and harmonic content, envPhase wobbles its phase by a few
	// weeks. Amplitude modulation alone leaves a fixed-frequency carrier
	// that any short linear recurrence predicts exactly; the chaotic phase
	// wobble makes the instantaneous frequency state-dependent, which is
	// what defeats the linear and tree baselines (Table II) while remaining
	// learnable by a sequence model.
	env      []float64
	envPhase []float64

	// Correlated eddy model: field contribution = eddyPat · eddyCoef[:,t],
	// with coefficients following Lorenz-96 trajectories.
	eddyPat  *tensor.Matrix // Nh × K
	eddyCoef *tensor.Matrix // K × Weeks

	// Free-running CESM-surrogate drivers (independent trajectories/noise).
	cesmEnso     []float64
	cesmEnv      []float64
	cesmEnvPhase []float64
	cesmCoef     *tensor.Matrix // K × Weeks
	cesmBias     []float64      // Nh static bias field
}

// Nh returns the number of ocean points (the snapshot dimension RZ).
func (d *Dataset) Nh() int { return len(d.OceanIdx) }

// Weeks returns the number of snapshots.
func (d *Dataset) Weeks() int { return d.Cfg.Weeks }

// Generate builds the full synthetic data set for cfg. Generation is
// deterministic in cfg (including Seed).
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Dataset{Cfg: cfg}
	d.buildMask()
	d.buildDates()
	d.buildStaticFields()
	d.buildDrivers()
	d.buildSnapshots()
	return d, nil
}

func (d *Dataset) buildMask() {
	c := d.Cfg
	n := c.LatN * c.LonN
	d.Mask = make([]bool, n)
	d.GridToOcean = make([]int, n)
	for i := range d.GridToOcean {
		d.GridToOcean[i] = -1
	}
	for li := 0; li < c.LatN; li++ {
		for lj := 0; lj < c.LonN; lj++ {
			g := li*c.LonN + lj
			if !c.IsLand(li, lj) {
				d.Mask[g] = true
				d.GridToOcean[g] = len(d.OceanIdx)
				d.OceanIdx = append(d.OceanIdx, g)
			}
		}
	}
}

func (d *Dataset) buildDates() {
	d.Dates = make([]time.Time, d.Cfg.Weeks)
	for t := range d.Dates {
		d.Dates[t] = StartDate.AddDate(0, 0, 7*t)
	}
}

// yearFrac returns (years since start, fraction of calendar year) for week t.
func (d *Dataset) yearFrac(t int) (years, frac float64) {
	years = float64(t) * 7 / 365.25
	date := d.Dates[t]
	yearStart := time.Date(date.Year(), 1, 1, 0, 0, 0, 0, time.UTC)
	frac = date.Sub(yearStart).Hours() / 24 / 365.25
	return years, frac
}

func (d *Dataset) buildStaticFields() {
	c := d.Cfg
	nh := d.Nh()
	d.clim = make([]float64, nh)
	d.seasAmp = make([]float64, nh)
	d.seasPeak = make([]float64, nh)
	d.hemi = make([]float64, nh)
	d.trendRate = make([]float64, nh)
	d.ensoPat = make([]float64, nh)
	for i, g := range d.OceanIdx {
		lat := c.Lat(g / c.LonN)
		lon := c.Lon(g % c.LonN)
		// Climatology: ~29 °C at the equator falling to just below freezing
		// (sea water) at the poles.
		d.clim[i] = -1.8 + 30.6*math.Exp(-(lat/38)*(lat/38))
		// Seasonal amplitude grows away from the equator and peaks in the
		// mid-latitudes where continental influence is strongest.
		a := math.Abs(lat)
		d.seasAmp[i] = 0.25 + 5.2*(a/90)*math.Exp(-((a-42)/48)*((a-42)/48))
		// SST peaks in late summer: ~September in the north, ~March south —
		// with the peak drifting later at higher latitudes (the mixed layer's
		// thermal lag), as in the real ocean. The continuous phase spread is
		// load-bearing: it gives the annual band a quadrature pair of POD
		// modes, so the season's phase AND direction are observable from a
		// single coefficient snapshot (otherwise the causal
		// sequence-to-sequence models start from an ascending/descending
		// ambiguity that non-causal window regressors do not face).
		if lat >= 0 {
			d.seasPeak[i] = 0.60 + 0.0022*a
			d.hemi[i] = 1
		} else {
			d.seasPeak[i] = 0.10 + 0.0022*a
			d.hemi[i] = -1
		}
		// Secular warming, spatially uniform. A uniform pattern is nearly
		// orthogonal to the mean-removed POD modes (dipoles and localized
		// bumps have ~zero spatial mean), so the warming mostly lands in the
		// truncation residual: the coefficient windows stay close to the
		// training distribution while reconstructed fields acquire the
		// gradual late-period bias behind the paper's Fig 5 error growth.
		d.trendRate[i] = 0.012
		// ENSO spatial footprint: equatorial Eastern-Central Pacific.
		dl := lat / 11
		dn := lonDist(lon, 225) / 48
		d.ensoPat[i] = 1.45 * math.Exp(-(dl*dl + dn*dn))
	}
}

func (d *Dataset) buildDrivers() {
	cfg := d.Cfg
	weeks := cfg.Weeks
	rng := tensor.NewRNG(cfg.Seed)

	// ENSO-like index: two incommensurate oscillations modulating each other
	// plus an AR(1) component, giving an irregular 3–7 year cycle.
	ensoRng := rng.Split(1)
	d.enso = ensoIndex(weeks, ensoRng)
	d.cesmEnso = ensoIndex(weeks, rng.Split(2))

	// Eddy patterns: K smooth random fields (sums of Gaussian bumps over
	// ocean points), each driven by a component of a Lorenz-96 trajectory:
	// smooth week to week, decorrelated over a couple of months, and
	// nonlinearly (but deterministically) predictable at the 8-week forecast
	// horizon.
	k := cfg.EddyPatterns
	d.eddyPat = tensor.NewMatrix(d.Nh(), k)
	patRng := rng.Split(3)
	for p := 0; p < k; p++ {
		d.fillEddyPattern(p, patRng.Split(uint64(p)))
	}
	d.eddyCoef = chaosSeries(k, weeks, eddyStride, 0.42, rng.Split(4))
	d.cesmCoef = chaosSeries(k, weeks, eddyStride, 0.42, rng.Split(5))

	// Seasonal-envelope processes (one pair per model run): standardized
	// Lorenz-63 components — x modulates the amplitude, z the phase. The
	// sampling rate (envStride RK4 steps per week) puts roughly one lobe
	// orbit inside the 8-week forecast horizon, so lobe switches — the
	// events linear predictors cannot anticipate — happen at forecast scale.
	env := lorenz63Series(weeks, envStride, rng.Split(7))
	d.env, d.envPhase = env.Row(0), env.Row(2)
	cenv := lorenz63Series(weeks, envStride, rng.Split(8))
	d.cesmEnv, d.cesmEnvPhase = cenv.Row(0), cenv.Row(2)

	// CESM static bias: smooth warm bias, strongest in the tropics, matching
	// the ~1.8–1.9 °C regional RMSE the paper reports against CESM.
	d.cesmBias = make([]float64, d.Nh())
	biasRng := rng.Split(6)
	base := 1.15
	for i, g := range d.OceanIdx {
		lat := cfg.Lat(g / cfg.LonN)
		d.cesmBias[i] = base*math.Exp(-(lat/45)*(lat/45)) + 0.25*biasRng.NormFloat64()
	}
}

// ensoIndex generates an irregular multi-year oscillation of O(1) amplitude.
// The component periods (3.4 and 6.8 years) are short enough that the 8-year
// training window sees full cycles, so the training-period mean of the index
// is representative of the test period — otherwise every model (and the POD
// basis itself) inherits an irreducible distribution shift.
func ensoIndex(weeks int, rng *tensor.RNG) []float64 {
	phi1 := rng.Float64() * 2 * math.Pi
	phi2 := rng.Float64() * 2 * math.Pi
	out := make([]float64, weeks)
	ar := 0.0
	for t := 0; t < weeks; t++ {
		y := float64(t) * 7 / 365.25
		osc := math.Sin(2*math.Pi*y/3.4+phi1) * (0.7 + 0.3*math.Sin(2*math.Pi*y/6.8+phi2))
		ar = 0.95*ar + 0.11*rng.NormFloat64()
		out[t] = osc + ar
	}
	return out
}

// Chaos sampling strides (RK4 steps per week at dt = 0.02, i.e. model time
// units per week): eddies evolve fast enough that an 8-week forecast spans
// ~0.6 MTU — beyond the linear predictability horizon but well within reach
// of a learned nonlinear propagator. The seasonal envelope moves slightly
// slower.
const (
	eddyStride = 2
	// envStride is in Lorenz-63 RK4 steps (dt = 0.01) per week: 3 steps =
	// 0.03 time units per week. The envelope persists within one 8-week
	// window (0.24 tu) but lobe switches arrive every few months — the
	// chaotic events a linear predictor cannot anticipate, at a rate the
	// sequence models can learn from eight years of data.
	envStride = 3
)

// lorenz63Series returns the three standardized Lorenz-63 components,
// high-pass filtered: a ~1.5-year moving average is subtracted from each
// component (and the result re-standardized) so the chaotic variability
// lives at the weeks-to-months scale the forecast task probes. Without the
// filter the attractor's lobe-residence asymmetry leaves decade-scale mean
// drift, which would shift the train/test coefficient distributions for
// every model rather than test forecasting skill.
func lorenz63Series(weeks, stride int, rng *tensor.RNG) *tensor.Matrix {
	out, err := chaos.NewLorenz63().StandardizedSeries(weeks, stride, rng)
	if err != nil {
		panic(err) // arguments are internally consistent
	}
	highPassRows(out)
	return out
}

// highPassRows subtracts a ±38-week (~1.5-year) moving average from every
// row and re-standardizes it to zero mean and unit variance. All chaotic
// drivers pass through this filter: their nonlinear weeks-to-months
// variability (the forecast difficulty) is preserved while the attractors'
// slow wandering — which would make the 8-year training period
// unrepresentative of the 28-year test period for every model — is removed.
func highPassRows(m *tensor.Matrix) {
	const halfWin = 38
	for c := 0; c < m.Rows; c++ {
		row := m.Row(c)
		filtered := make([]float64, len(row))
		for t := range row {
			lo, hi := t-halfWin, t+halfWin
			if lo < 0 {
				lo = 0
			}
			if hi >= len(row) {
				hi = len(row) - 1
			}
			var s float64
			for u := lo; u <= hi; u++ {
				s += row[u]
			}
			filtered[t] = row[t] - s/float64(hi-lo+1)
		}
		var mean, variance float64
		for _, v := range filtered {
			mean += v
		}
		mean /= float64(len(filtered))
		for i := range filtered {
			filtered[i] -= mean
			variance += filtered[i] * filtered[i]
		}
		variance /= float64(len(filtered))
		inv := 1.0
		if variance > 1e-12 {
			inv = 1 / math.Sqrt(variance)
		}
		for i := range filtered {
			row[i] = filtered[i] * inv
		}
	}
}

// chaosSeries returns k unit-variance Lorenz-96 component series of the
// given length, scaled by sigma.
func chaosSeries(k, weeks, stride int, sigma float64, rng *tensor.RNG) *tensor.Matrix {
	n := k
	if n < 4 {
		n = 4
	}
	l96, err := chaos.NewLorenz96(n + 2)
	if err != nil {
		panic(err) // n+2 >= 6 always
	}
	out, err := l96.StandardizedSeries(k, weeks, stride, rng)
	if err != nil {
		panic(err) // k <= n+2 by construction
	}
	highPassRows(out)
	//podnas:allow floateq exact skip: scaling by bitwise 1.0 is the identity
	if sigma != 1 {
		out.Scale(sigma)
	}
	return out
}

// fillEddyPattern writes eddy pattern p: a sum of localized Gaussian bumps
// at random ocean locations. Patterns with higher index use smaller bumps,
// so the POD spectrum decays smoothly ("stochasticity increases with mode
// number", paper Fig. 5).
func (d *Dataset) fillEddyPattern(p int, rng *tensor.RNG) {
	cfg := d.Cfg
	nBumps := 5 + rng.Intn(4)
	type bump struct {
		lat, lon, sLat, sLon, amp float64
	}
	scale := 1.0 / (1 + 0.25*float64(p))
	bumps := make([]bump, nBumps)
	for b := range bumps {
		g := d.OceanIdx[rng.Intn(len(d.OceanIdx))]
		bumps[b] = bump{
			lat:  cfg.Lat(g / cfg.LonN),
			lon:  cfg.Lon(g % cfg.LonN),
			sLat: (6 + 14*rng.Float64()) * scale,
			sLon: (10 + 25*rng.Float64()) * scale,
			amp:  (0.5 + rng.Float64()) * signOf(rng),
		}
	}
	for i, g := range d.OceanIdx {
		lat := cfg.Lat(g / cfg.LonN)
		lon := cfg.Lon(g % cfg.LonN)
		var v float64
		for _, b := range bumps {
			dl := (lat - b.lat) / b.sLat
			dn := lonDist(lon, b.lon) / b.sLon
			r2 := dl*dl + dn*dn
			if r2 < 16 {
				v += b.amp * math.Exp(-r2)
			}
		}
		d.eddyPat.Set(i, p, v)
	}
}

func signOf(rng *tensor.RNG) float64 {
	if rng.Float64() < 0.5 {
		return -1
	}
	return 1
}

// hashNorm returns a deterministic standard-normal deviate keyed by
// (seed, stream, i, t): the same arguments always give the same value,
// independent of evaluation order. Box–Muller over two splitmix uniforms.
func hashNorm(seed, stream uint64, i, t int) float64 {
	x := seed ^ stream*0x9e3779b97f4a7c15 ^ uint64(i)*0xbf58476d1ce4e5b9 ^ uint64(t)*0x94d049bb133111eb
	u1 := splitmix(&x)
	u2 := splitmix(&x)
	a := (float64(u1>>11) + 0.5) / (1 << 53)
	b := float64(u2>>11) / (1 << 53)
	return math.Sqrt(-2*math.Log(a)) * math.Cos(2*math.Pi*b)
}

func splitmix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// deterministic noise stream identifiers.
const (
	streamTruth = 11
	streamCESM  = 13
	streamHYCOM = 17
)

// seasonalTerm evaluates the envelope-modulated seasonal cycle: the annual
// carrier's amplitude scales with (1 + 0.4·tanh(env)) and a second harmonic
// proportional to the envelope shifts its shape. Both are multiplicative
// interactions between the slow chaotic envelope and the carrier, so the
// induced POD coefficient dynamics cannot be captured by a linear
// input-output map (the paper's Table II separation).
func seasonalTerm(amp, frac, peak, hemi, env, envPhase float64) float64 {
	// Phase wobble of up to ±0.04 yr (±2 weeks) around the climatological
	// peak, driven by its own chaotic process.
	phase := 2 * math.Pi * (frac - peak - 0.04*math.Tanh(envPhase))
	mod := math.Tanh(env)
	// The second harmonic carries the hemisphere sign. Because the two
	// hemispheres' peaks differ by exactly half a year, cos(2·phase) alone
	// would be globally in phase, producing a one-signed global POD mode
	// that soaks up the uniform warming trend; the sign keeps every leading
	// mode a near-zero-spatial-mean dipole.
	return amp * ((1+0.3*mod)*math.Cos(phase) + 0.2*mod*hemi*math.Cos(2*phase))
}

// truthAt computes the truth temperature at ocean point i, week t.
func (d *Dataset) truthAt(i, t int, years, frac float64) float64 {
	v := d.clim[i] +
		seasonalTerm(d.seasAmp[i], frac, d.seasPeak[i], d.hemi[i], d.env[t], d.envPhase[t]) +
		d.trendRate[i]*years +
		d.enso[t]*d.ensoPat[i]
	prow := d.eddyPat.Row(i)
	for p, pv := range prow {
		v += pv * d.eddyCoef.At(p, t)
	}
	return v + d.Cfg.NoiseSigma*hashNorm(d.Cfg.Seed, streamTruth, i, t)
}

func (d *Dataset) buildSnapshots() {
	nh, weeks := d.Nh(), d.Cfg.Weeks
	d.Snapshots = tensor.NewMatrix(nh, weeks)
	// Parallel over ocean points: each row of the snapshot matrix is a
	// point's full time series, so rows partition cleanly across workers.
	years := make([]float64, weeks)
	fracs := make([]float64, weeks)
	for t := 0; t < weeks; t++ {
		years[t], fracs[t] = d.yearFrac(t)
	}
	parallelRows(nh, func(i int) {
		row := d.Snapshots.Row(i)
		for t := 0; t < weeks; t++ {
			row[t] = d.truthAt(i, t, years[t], fracs[t])
		}
	})
}

// TruthField returns the flattened ocean-point truth field for week t.
func (d *Dataset) TruthField(t int) []float64 {
	out := make([]float64, d.Nh())
	for i := range out {
		out[i] = d.Snapshots.At(i, t)
	}
	return out
}

// NumTrain returns the number of snapshots in the training+validation
// period (dates ≤ TrainEndDate), clipped to the configured record length.
// For the full-calendar configs this is 427, matching the paper.
func (d *Dataset) NumTrain() int {
	n := 0
	for _, date := range d.Dates {
		if date.After(TrainEndDate) {
			break
		}
		n++
	}
	if n == len(d.Dates) && n > 1 {
		// Short synthetic records (tests) end before 1990; use a 40/60 split
		// so there is always a test period.
		n = len(d.Dates) * 2 / 5
	}
	return n
}

// TrainSnapshots returns the Nh×NumTrain view of the training snapshots as
// a copy (POD centers it in place).
func (d *Dataset) TrainSnapshots() *tensor.Matrix {
	n := d.NumTrain()
	out := tensor.NewMatrix(d.Nh(), n)
	for i := 0; i < d.Nh(); i++ {
		copy(out.Row(i), d.Snapshots.Row(i)[:n])
	}
	return out
}

// TestSnapshots returns a copy of the snapshots after the training period.
func (d *Dataset) TestSnapshots() *tensor.Matrix {
	n := d.NumTrain()
	w := d.Cfg.Weeks - n
	out := tensor.NewMatrix(d.Nh(), w)
	for i := 0; i < d.Nh(); i++ {
		copy(out.Row(i), d.Snapshots.Row(i)[n:])
	}
	return out
}
