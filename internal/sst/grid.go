// Package sst provides a deterministic synthetic stand-in for the NOAA
// Optimum Interpolation Sea-Surface Temperature V2 data set used by Maulik
// et al. (SC 2020), plus surrogate CESM and HYCOM comparator forecasts.
//
// The real data set is a weekly 360×180 one-degree grid from 1981-10-22 to
// 2018-06-30 (1,914 snapshots) with land points masked out. The generator
// reproduces that calendar and grid together with the statistical structure
// the paper's experiments depend on: a latitude climatology, a seasonal
// cycle with opposite hemispheric phase (the dominant POD modes), a secular
// warming trend (which breaks extrapolation for tree-based baselines), an
// ENSO-like Eastern-Pacific oscillation, and spatially correlated stochastic
// eddies plus white measurement noise (the high POD modes).
//
// Everything is seeded: the same Config always yields bit-identical data.
package sst

import (
	"fmt"
	"math"
	"time"
)

// Config controls the synthetic data set resolution and length.
type Config struct {
	// LonN, LatN are grid dimensions. The real data set is 360×180.
	LonN, LatN int
	// Weeks is the number of weekly snapshots. The real data set has 1,914.
	Weeks int
	// Seed drives every stochastic component.
	Seed uint64
	// NoiseSigma is the white measurement-noise standard deviation (°C).
	NoiseSigma float64
	// EddyPatterns is the number of correlated stochastic eddy modes.
	EddyPatterns int
}

// FullScale returns the configuration matching the real data set's grid and
// calendar: 360×180 at one degree, 1,914 weekly snapshots. Memory heavy
// (~0.7 GB of snapshots); prefer Default for routine experiments.
func FullScale() Config {
	return Config{LonN: 360, LatN: 180, Weeks: 1914, Seed: 20200413, NoiseSigma: 0.15, EddyPatterns: 12}
}

// Default returns the standard experiment configuration: the full 1,914-week
// calendar on a two-degree 180×90 grid. Halving the resolution preserves all
// the structure the experiments measure (the POD spectrum, regional RMSE,
// probe trends) at a quarter of the memory.
func Default() Config {
	return Config{LonN: 180, LatN: 90, Weeks: 1914, Seed: 20200413, NoiseSigma: 0.15, EddyPatterns: 12}
}

// Small returns a reduced configuration for unit tests: a 60×30 grid and a
// short multi-year record.
func Small() Config {
	return Config{LonN: 60, LatN: 30, Weeks: 320, Seed: 7, NoiseSigma: 0.15, EddyPatterns: 6}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.LonN < 8 || c.LatN < 4 {
		return fmt.Errorf("sst: grid %dx%d too small", c.LonN, c.LatN)
	}
	if c.Weeks < 2 {
		return fmt.Errorf("sst: need at least 2 weeks, got %d", c.Weeks)
	}
	if c.NoiseSigma < 0 {
		return fmt.Errorf("sst: negative noise sigma %g", c.NoiseSigma)
	}
	if c.EddyPatterns < 0 {
		return fmt.Errorf("sst: negative eddy pattern count %d", c.EddyPatterns)
	}
	return nil
}

// StartDate is the first snapshot's date in the real data set.
var StartDate = time.Date(1981, 10, 22, 0, 0, 0, 0, time.UTC)

// TrainEndDate is the last date included in the training+validation period.
// The paper trains on 1981-10-22 "through 1989-12-31" and reports exactly
// 427 training snapshots; on our idealized 7-day calendar the 427th snapshot
// falls on 1989-12-21 and the 428th on 1989-12-28, so the cutoff is set just
// before the 428th to reproduce the paper's count.
var TrainEndDate = time.Date(1989, 12, 27, 0, 0, 0, 0, time.UTC)

// Lat returns the latitude of cell-row i (degrees, south negative).
func (c Config) Lat(i int) float64 {
	return -90 + (float64(i)+0.5)*180/float64(c.LatN)
}

// Lon returns the longitude of cell-column j (degrees east, [0, 360)).
func (c Config) Lon(j int) float64 {
	return (float64(j) + 0.5) * 360 / float64(c.LonN)
}

// LatIndex returns the cell-row containing latitude lat, clamped to the grid.
func (c Config) LatIndex(lat float64) int {
	i := int(math.Floor((lat + 90) * float64(c.LatN) / 180))
	return clampInt(i, 0, c.LatN-1)
}

// LonIndex returns the cell-column containing longitude lon (wrapping).
func (c Config) LonIndex(lon float64) int {
	lon = math.Mod(lon, 360)
	if lon < 0 {
		lon += 360
	}
	j := int(math.Floor(lon * float64(c.LonN) / 360))
	return clampInt(j, 0, c.LonN-1)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// lonDist returns the angular distance between two longitudes in degrees,
// accounting for wraparound (result in [0, 180]).
func lonDist(a, b float64) float64 {
	d := math.Abs(a - b)
	d = math.Mod(d, 360)
	if d > 180 {
		d = 360 - d
	}
	return d
}

// ellipse is an elliptical landmass in (lat, lon) space.
type ellipse struct {
	lat, lon   float64 // center
	rLat, rLon float64 // radii in degrees
}

func (e ellipse) contains(lat, lon float64) bool {
	dlat := (lat - e.lat) / e.rLat
	dlon := lonDist(lon, e.lon) / e.rLon
	return dlat*dlat+dlon*dlon <= 1
}

// continents approximates the real land distribution with a handful of
// ellipses and bands. The precise shapes are irrelevant to the experiments;
// what matters is (1) a realistic ocean fraction, (2) an open Eastern
// Pacific (the paper's RMSE evaluation box spans -10..+10 lat, 200..250
// lon), and (3) spatial heterogeneity so POD modes are nontrivial.
var continents = []ellipse{
	{lat: 50, lon: 262, rLat: 24, rLon: 42},  // North America
	{lat: -15, lon: 300, rLat: 30, rLon: 22}, // South America
	{lat: 15, lon: 272, rLat: 12, rLon: 12},  // Central America bridge
	{lat: 5, lon: 21, rLat: 32, rLon: 24},    // Africa
	{lat: 52, lon: 80, rLat: 26, rLon: 78},   // Eurasia
	{lat: -25, lon: 134, rLat: 12, rLon: 20}, // Australia
	{lat: 74, lon: 320, rLat: 10, rLon: 18},  // Greenland
}

// IsLand reports whether the cell at (latIdx, lonIdx) is land.
func (c Config) IsLand(latIdx, lonIdx int) bool {
	lat := c.Lat(latIdx)
	lon := c.Lon(lonIdx)
	if lat < -69 { // Antarctica
		return true
	}
	for _, e := range continents {
		if e.contains(lat, lon) {
			return true
		}
	}
	return false
}
