package plot

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() *Chart {
	return &Chart{
		Title:  "Search trajectories",
		XLabel: "minutes",
		YLabel: "R2",
		Series: []Series{
			{Name: "AE", X: []float64{0, 60, 120, 180}, Y: []float64{0.93, 0.96, 0.965, 0.966}},
			{Name: "RS", X: []float64{0, 60, 120, 180}, Y: []float64{0.93, 0.94, 0.941, 0.94}},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := (&Chart{Title: "x"}).Validate(); err == nil {
		t.Error("no series should fail")
	}
	bad := &Chart{Series: []Series{{Name: "a", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := bad.Validate(); err == nil {
		t.Error("length mismatch should fail")
	}
	empty := &Chart{Series: []Series{{Name: "a"}}}
	if err := empty.Validate(); err == nil {
		t.Error("no points should fail")
	}
	if err := sample().Validate(); err != nil {
		t.Errorf("valid chart rejected: %v", err)
	}
}

func TestSVGStructure(t *testing.T) {
	svg, err := sample().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "Search trajectories", "minutes", "AE", "RS",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("expected 2 polylines, got %d", strings.Count(svg, "<polyline"))
	}
}

func TestSVGEscapesMarkup(t *testing.T) {
	c := sample()
	c.Title = `a<b&"c"`
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "a<b") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b&amp;") {
		t.Error("expected escaped entities")
	}
}

func TestSVGSkipsNonFinite(t *testing.T) {
	c := &Chart{Series: []Series{{
		Name: "n",
		X:    []float64{0, 1, 2, 3},
		Y:    []float64{1, math.NaN(), math.Inf(1), 2},
	}}}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("non-finite values leaked into the SVG")
	}
}

func TestDegenerateExtent(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "const", X: []float64{5, 5}, Y: []float64{3, 3}}}}
	if _, err := c.SVG(); err != nil {
		t.Fatalf("constant series should still render: %v", err)
	}
}

func TestWriteSVGAndCSV(t *testing.T) {
	dir := t.TempDir()
	c := sample()
	if err := c.WriteSVG(dir, "fig3"); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteCSV(dir, "fig3"); err != nil {
		t.Fatal(err)
	}
	svg, err := os.ReadFile(filepath.Join(dir, "fig3.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svg), "<svg") {
		t.Error("svg file malformed")
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if lines[0] != "series,x,y" {
		t.Errorf("csv header %q", lines[0])
	}
	if len(lines) != 1+8 {
		t.Errorf("csv has %d lines, want 9", len(lines))
	}
}

func TestCSVEscaping(t *testing.T) {
	if got := csvEscape(`a,b"c`); got != `"a,b""c"` {
		t.Errorf("csvEscape = %q", got)
	}
	if got := csvEscape("plain"); got != "plain" {
		t.Errorf("csvEscape = %q", got)
	}
}

func TestWriteToBadDirFails(t *testing.T) {
	c := sample()
	if err := c.WriteSVG("/dev/null/notadir", "x"); err == nil {
		t.Error("expected mkdir failure")
	}
}
