package plot

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() *Chart {
	return &Chart{
		Title:  "Search trajectories",
		XLabel: "minutes",
		YLabel: "R2",
		Series: []Series{
			{Name: "AE", X: []float64{0, 60, 120, 180}, Y: []float64{0.93, 0.96, 0.965, 0.966}},
			{Name: "RS", X: []float64{0, 60, 120, 180}, Y: []float64{0.93, 0.94, 0.941, 0.94}},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := (&Chart{Title: "x"}).Validate(); err == nil {
		t.Error("no series should fail")
	}
	bad := &Chart{Series: []Series{{Name: "a", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := bad.Validate(); err == nil {
		t.Error("length mismatch should fail")
	}
	empty := &Chart{Series: []Series{{Name: "a"}}}
	if err := empty.Validate(); err == nil {
		t.Error("no points should fail")
	}
	if err := sample().Validate(); err != nil {
		t.Errorf("valid chart rejected: %v", err)
	}
}

func TestSVGStructure(t *testing.T) {
	svg, err := sample().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "Search trajectories", "minutes", "AE", "RS",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("expected 2 polylines, got %d", strings.Count(svg, "<polyline"))
	}
}

func TestSVGEscapesMarkup(t *testing.T) {
	c := sample()
	c.Title = `a<b&"c"`
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "a<b") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b&amp;") {
		t.Error("expected escaped entities")
	}
}

func TestSVGSkipsNonFinite(t *testing.T) {
	c := &Chart{Series: []Series{{
		Name: "n",
		X:    []float64{0, 1, 2, 3},
		Y:    []float64{1, math.NaN(), math.Inf(1), 2},
	}}}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("non-finite values leaked into the SVG")
	}
}

func TestDegenerateExtent(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "const", X: []float64{5, 5}, Y: []float64{3, 3}}}}
	if _, err := c.SVG(); err != nil {
		t.Fatalf("constant series should still render: %v", err)
	}
}

func TestWriteSVGAndCSV(t *testing.T) {
	dir := t.TempDir()
	c := sample()
	if err := c.WriteSVG(dir, "fig3"); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteCSV(dir, "fig3"); err != nil {
		t.Fatal(err)
	}
	svg, err := os.ReadFile(filepath.Join(dir, "fig3.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svg), "<svg") {
		t.Error("svg file malformed")
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if lines[0] != "series,x,y" {
		t.Errorf("csv header %q", lines[0])
	}
	if len(lines) != 1+8 {
		t.Errorf("csv has %d lines, want 9", len(lines))
	}
}

func TestStepSeriesInsertsHoldPoints(t *testing.T) {
	c := &Chart{Series: []Series{{
		Name: "util",
		X:    []float64{0, 1, 2},
		Y:    []float64{0.5, 1.0, 0.25},
		Step: true,
	}}}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	start := strings.Index(svg, `<polyline points="`)
	if start < 0 {
		t.Fatal("no polyline rendered")
	}
	pts := svg[start+len(`<polyline points="`):]
	pts = pts[:strings.Index(pts, `"`)]
	// 3 data points step-rendered become 5 vertices (2 hold points added).
	if n := len(strings.Fields(pts)); n != 5 {
		t.Errorf("step polyline has %d vertices, want 5: %q", n, pts)
	}
}

func TestBarSeriesRendersRects(t *testing.T) {
	c := &Chart{
		Title:  "latency",
		Series: []Series{{Name: "count", X: []float64{1, 2, 3}, Y: []float64{4, 0, 2}, Bars: true}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	// One rect per bar plus the background, axes box, and legend swatch.
	if n := strings.Count(svg, "<rect"); n != 3+3 {
		t.Errorf("bar chart has %d rects, want 6", n)
	}
	if strings.Contains(svg, "<polyline") {
		t.Error("bar series must not emit a polyline")
	}
	if strings.Contains(svg, `height="-`) || strings.Contains(svg, `width="-`) {
		t.Error("negative rect dimensions")
	}
}

func TestBarBoundsIncludeZero(t *testing.T) {
	// All-positive bars far from zero: the baseline must still be in range.
	c := &Chart{Series: []Series{{Name: "n", X: []float64{0, 1}, Y: []float64{100, 110}, Bars: true}}}
	_, _, y0, _ := c.bounds()
	if y0 > 0 {
		t.Errorf("bar chart y0 = %v, want <= 0", y0)
	}
	// Line charts keep the tight extent.
	l := &Chart{Series: []Series{{Name: "n", X: []float64{0, 1}, Y: []float64{100, 110}}}}
	_, _, ly0, _ := l.bounds()
	if ly0 <= 0 {
		t.Errorf("line chart y0 = %v, want tight bounds", ly0)
	}
}

func TestBarHalfWidth(t *testing.T) {
	if hw := barHalfWidth([]float64{0, 2, 4}, 4); math.Abs(hw-0.9) > 1e-12 {
		t.Errorf("uniform spacing half-width %v, want 0.9", hw)
	}
	if hw := barHalfWidth([]float64{5}, 10); math.Abs(hw-0.2) > 1e-12 {
		t.Errorf("lone bar half-width %v, want 0.2", hw)
	}
}

func TestHistogramChart(t *testing.T) {
	c := HistogramChart("eval latency", "seconds", []float64{0, 1, 2, 3}, []int{5, 0, 2})
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s := c.Series[0]
	if !s.Bars {
		t.Error("histogram series must be bars")
	}
	wantX := []float64{0.5, 1.5, 2.5}
	for i := range wantX {
		if s.X[i] != wantX[i] {
			t.Errorf("bucket center[%d] = %v, want %v", i, s.X[i], wantX[i])
		}
	}
	if s.Y[0] != 5 || s.Y[1] != 0 || s.Y[2] != 2 {
		t.Errorf("counts %v", s.Y)
	}
	if _, err := c.SVG(); err != nil {
		t.Fatal(err)
	}
}

func TestCSVEscaping(t *testing.T) {
	if got := csvEscape(`a,b"c`); got != `"a,b""c"` {
		t.Errorf("csvEscape = %q", got)
	}
	if got := csvEscape("plain"); got != "plain" {
		t.Errorf("csvEscape = %q", got)
	}
}

func TestWriteToBadDirFails(t *testing.T) {
	c := sample()
	if err := c.WriteSVG("/dev/null/notadir", "x"); err == nil {
		t.Error("expected mkdir failure")
	}
}
