// Package plot renders simple line charts as standalone SVG documents and
// exports series data as CSV, using only the standard library. It exists so
// cmd/experiments can materialize the paper's figures (search trajectories,
// utilization traces, high-performer growth, probe series) as files rather
// than only printing summaries.
package plot

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// Series is one named data set. By default it renders as a polyline; Step
// and Bars select the other mark types.
type Series struct {
	Name string
	X, Y []float64
	// Step renders a step-after line: each y holds until the next x. Right
	// for counters and bin-sampled traces (utilization, high-performer
	// growth) where interpolating between samples would invent data.
	Step bool
	// Bars renders vertical bars rooted at the y=0 baseline — the
	// histogram form. Bar width is inferred from the x spacing.
	Bars bool
}

// Chart is a titled collection of series sharing axes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height are the SVG dimensions in pixels (defaults 720×420).
	Width, Height int
}

// HistogramChart builds a bar chart from equal-width bucket edges (n+1
// values) and per-bucket counts (n values), placing each bar at its bucket
// center — the shape replay latency histograms arrive in.
func HistogramChart(title, xLabel string, edges []float64, counts []int) *Chart {
	s := Series{Name: "count", Bars: true}
	for i, n := range counts {
		if i+1 >= len(edges) {
			break
		}
		s.X = append(s.X, (edges[i]+edges[i+1])/2)
		s.Y = append(s.Y, float64(n))
	}
	return &Chart{Title: title, XLabel: xLabel, YLabel: "count", Series: []Series{s}}
}

// palette cycles through visually distinct stroke colors.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf"}

// Validate reports structural problems (no series, length mismatches).
func (c *Chart) Validate() error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	points := 0
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
		}
		points += len(s.X)
	}
	if points == 0 {
		return fmt.Errorf("plot: chart %q has no points", c.Title)
	}
	return nil
}

// bounds returns the data extent across all series, ignoring non-finite
// values, with a small margin; degenerate extents are widened.
func (c *Chart) bounds() (x0, x1, y0, y1 float64) {
	x0, y0 = math.Inf(1), math.Inf(1)
	x1, y1 = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			x0 = math.Min(x0, s.X[i])
			x1 = math.Max(x1, s.X[i])
			y0 = math.Min(y0, s.Y[i])
			y1 = math.Max(y1, s.Y[i])
		}
	}
	if !finite(x0) { // all points were non-finite
		x0, x1, y0, y1 = 0, 1, 0, 1
	}
	for _, s := range c.Series {
		if s.Bars { // bars are rooted at zero, so the baseline must be visible
			y0 = math.Min(y0, 0)
			y1 = math.Max(y1, 0)
			break
		}
	}
	if x1-x0 < 1e-12 {
		x0, x1 = x0-0.5, x1+0.5
	}
	if y1-y0 < 1e-12 {
		y0, y1 = y0-0.5, y1+0.5
	}
	my := 0.05 * (y1 - y0)
	return x0, x1, y0 - my, y1 + my
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// barHalfWidth picks a bar half-width in data units: 45% of the smallest
// gap between consecutive x values, so adjacent bars touch but never
// overlap; a lone bar spans a fixed fraction of the x extent.
func barHalfWidth(xs []float64, xSpan float64) float64 {
	gap := math.Inf(1)
	for i := 1; i < len(xs); i++ {
		if d := xs[i] - xs[i-1]; d > 0 && d < gap {
			gap = d
		}
	}
	if math.IsInf(gap, 1) {
		return 0.02 * xSpan
	}
	return 0.45 * gap
}

// SVG renders the chart as a complete SVG document.
func (c *Chart) SVG() (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 420
	}
	const (
		padL = 64
		padR = 16
		padT = 36
		padB = 46
	)
	plotW := float64(w - padL - padR)
	plotH := float64(h - padT - padB)
	x0, x1, y0, y1 := c.bounds()
	sx := func(x float64) float64 { return padL + plotW*(x-x0)/(x1-x0) }
	sy := func(y float64) float64 { return float64(padT) + plotH*(1-(y-y0)/(y1-y0)) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="15" text-anchor="middle">%s</text>`+"\n", w/2, escape(c.Title))

	// Axes box and ticks.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#333"/>`+"\n", padL, padT, plotW, plotH)
	for i := 0; i <= 4; i++ {
		fx := x0 + (x1-x0)*float64(i)/4
		fy := y0 + (y1-y0)*float64(i)/4
		fmt.Fprintf(&b, `<text x="%.0f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n", sx(fx), h-padB+16, tick(fx))
		fmt.Fprintf(&b, `<text x="%d" y="%.0f" font-size="11" text-anchor="end">%s</text>`+"\n", padL-6, sy(fy)+4, tick(fy))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", padL, sy(fy), float64(padL)+plotW, sy(fy))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n", padL+int(plotW)/2, h-10, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n", padT+int(plotH)/2, padT+int(plotH)/2, escape(c.YLabel))

	// Series marks and legend.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		// Collect the finite points once; all three mark types skip holes.
		var fx, fy []float64
		for i := range s.X {
			if !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			fx = append(fx, s.X[i])
			fy = append(fy, s.Y[i])
		}
		switch {
		case s.Bars:
			hw := barHalfWidth(fx, x1-x0)
			base := sy(0)
			for i := range fx {
				top := sy(fy[i])
				y, hgt := top, base-top
				if hgt < 0 { // negative bar hangs below the baseline
					y, hgt = base, -hgt
				}
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.7" stroke="%s"/>`+"\n",
					sx(fx[i]-hw), y, sx(fx[i]+hw)-sx(fx[i]-hw), hgt, color, color)
			}
		case s.Step:
			var pts []string
			for i := range fx {
				if i > 0 { // hold the previous y until this x
					pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(fx[i]), sy(fy[i-1])))
				}
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(fx[i]), sy(fy[i])))
			}
			if len(pts) > 0 {
				fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n", strings.Join(pts, " "), color)
			}
		default:
			var pts []string
			for i := range fx {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(fx[i]), sy(fy[i])))
			}
			if len(pts) > 0 {
				fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n", strings.Join(pts, " "), color)
			}
		}
		ly := padT + 14 + 16*si
		if s.Bars {
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="20" height="8" fill="%s" fill-opacity="0.7"/>`+"\n", padL+8, ly-4, color)
		} else {
			fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n", padL+8, ly, padL+28, ly, color)
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n", padL+33, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// tick formats an axis tick value compactly.
func tick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 10000:
		return fmt.Sprintf("%.0f", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// WriteSVG renders the chart into dir/name.svg, creating dir if needed.
func (c *Chart) WriteSVG(dir, name string) error {
	svg, err := c.SVG()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".svg"), []byte(svg), 0o644)
}

// WriteCSV exports the chart's series to dir/name.csv in long form:
// series,x,y — one row per point.
func (c *Chart) WriteCSV(dir, name string) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range c.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%g,%g\n", csvEscape(s.Name), s.X[i], s.Y[i])
		}
	}
	return os.WriteFile(filepath.Join(dir, name+".csv"), []byte(b.String()), 0o644)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
