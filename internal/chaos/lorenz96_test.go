package chaos

import (
	"math"
	"testing"

	"podnas/internal/tensor"
)

func TestNewLorenz96Validation(t *testing.T) {
	if _, err := NewLorenz96(3); err == nil {
		t.Error("N=3 should be rejected")
	}
	l, err := NewLorenz96(8)
	if err != nil {
		t.Fatal(err)
	}
	if l.F != 8 || l.Dt <= 0 {
		t.Errorf("unexpected defaults %+v", l)
	}
}

func TestFixedPointStaysFixed(t *testing.T) {
	// x_j = F for all j is an equilibrium: tendency is exactly zero.
	l, _ := NewLorenz96(6)
	x := make([]float64, 6)
	for j := range x {
		x[j] = l.F
	}
	orig := append([]float64(nil), x...)
	for i := 0; i < 100; i++ {
		l.Step(x)
	}
	for j := range x {
		if math.Abs(x[j]-orig[j]) > 1e-10 {
			t.Fatalf("equilibrium drifted: x[%d] = %g", j, x[j])
		}
	}
}

func TestAttractorBounded(t *testing.T) {
	l, _ := NewLorenz96(12)
	x := l.InitialState(tensor.NewRNG(1))
	for i := 0; i < 20000; i++ {
		l.Step(x)
		for j, v := range x {
			if math.IsNaN(v) || math.Abs(v) > 50 {
				t.Fatalf("state escaped at step %d: x[%d] = %g", i, j, v)
			}
		}
	}
}

func TestSensitivityToInitialConditions(t *testing.T) {
	// Chaos: a 1e-8 perturbation must grow by orders of magnitude.
	l, _ := NewLorenz96(12)
	a := l.InitialState(tensor.NewRNG(2))
	for i := 0; i < 2000; i++ {
		l.Step(a) // spin up
	}
	b := append([]float64(nil), a...)
	b[0] += 1e-8
	for i := 0; i < 1000; i++ { // 20 MTU
		l.Step(a)
		l.Step(b)
	}
	var dist float64
	for j := range a {
		d := a[j] - b[j]
		dist += d * d
	}
	dist = math.Sqrt(dist)
	if dist < 1e-3 {
		t.Errorf("perturbation grew only to %g; system not chaotic?", dist)
	}
}

func TestShortTermDeterministicPredictability(t *testing.T) {
	// The flip side: over a short horizon nearby states stay nearby (this
	// is what makes the emulation task learnable).
	l, _ := NewLorenz96(12)
	a := l.InitialState(tensor.NewRNG(3))
	for i := 0; i < 2000; i++ {
		l.Step(a)
	}
	b := append([]float64(nil), a...)
	b[0] += 1e-4
	for i := 0; i < 25; i++ { // 0.5 MTU
		l.Step(a)
		l.Step(b)
	}
	var dist float64
	for j := range a {
		d := a[j] - b[j]
		dist += d * d
	}
	if math.Sqrt(dist) > 0.1 {
		t.Errorf("short-horizon divergence %g too fast", math.Sqrt(dist))
	}
}

func TestTrajectoryShapeAndDeterminism(t *testing.T) {
	l, _ := NewLorenz96(10)
	a, err := l.Trajectory(50, 3, tensor.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 50 || a.Cols != 10 {
		t.Fatalf("trajectory shape %dx%d", a.Rows, a.Cols)
	}
	b, _ := l.Trajectory(50, 3, tensor.NewRNG(4))
	if !a.Equal(b, 0) {
		t.Error("same seed gave different trajectories")
	}
	c, _ := l.Trajectory(50, 3, tensor.NewRNG(5))
	if a.Equal(c, 1e-6) {
		t.Error("different seeds gave identical trajectories")
	}
	if _, err := l.Trajectory(0, 1, tensor.NewRNG(1)); err == nil {
		t.Error("zero samples should fail")
	}
}

func TestStandardizedSeriesMoments(t *testing.T) {
	l, _ := NewLorenz96(12)
	s, err := l.StandardizedSeries(5, 800, 3, tensor.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows != 5 || s.Cols != 800 {
		t.Fatalf("series shape %dx%d", s.Rows, s.Cols)
	}
	for p := 0; p < 5; p++ {
		var mean, variance float64
		row := s.Row(p)
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		for _, v := range row {
			variance += (v - mean) * (v - mean)
		}
		variance /= float64(len(row))
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-9 {
			t.Errorf("series %d mean %g var %g; want 0/1", p, mean, variance)
		}
	}
	if _, err := l.StandardizedSeries(13, 10, 1, tensor.NewRNG(1)); err == nil {
		t.Error("k > N should fail")
	}
}

func TestSeriesAutocorrelationDecays(t *testing.T) {
	// Samples must be correlated at short lags (smooth dynamics) and
	// decorrelated at long lags (chaos) — the property that sets the
	// forecast difficulty.
	l, _ := NewLorenz96(12)
	s, _ := l.StandardizedSeries(1, 2000, 5, tensor.NewRNG(7))
	row := s.Row(0)
	auto := func(lag int) float64 {
		var c float64
		n := len(row) - lag
		for i := 0; i < n; i++ {
			c += row[i] * row[i+lag]
		}
		return c / float64(n)
	}
	if a1 := auto(1); a1 < 0.8 {
		t.Errorf("lag-1 autocorrelation %.3f, want smooth (> 0.8)", a1)
	}
	if a50 := auto(200); math.Abs(a50) > 0.25 {
		t.Errorf("lag-200 autocorrelation %.3f, want decorrelated", a50)
	}
}
