package chaos

import (
	"fmt"
	"math"

	"podnas/internal/tensor"
)

// Lorenz63 is the classic three-variable Lorenz (1963) convection model:
//
//	dx/dt = σ(y − x)
//	dy/dt = x(ρ − z) − y
//	dz/dt = xy − βz
//
// In the standard chaotic regime (σ=10, ρ=28, β=8/3) the trajectory orbits
// two lobes and switches between them unpredictably for linear models while
// remaining learnable by nonlinear sequence models from a few hundred
// samples — the property the synthetic SST generator uses for its
// seasonal-envelope and ENSO drivers.
type Lorenz63 struct {
	Sigma, Rho, Beta float64
	// Dt is the RK4 step (0.01 is accurate).
	Dt float64
}

// NewLorenz63 returns the standard chaotic configuration.
func NewLorenz63() *Lorenz63 {
	return &Lorenz63{Sigma: 10, Rho: 28, Beta: 8.0 / 3.0, Dt: 0.01}
}

func (l *Lorenz63) tendency(s [3]float64) [3]float64 {
	return [3]float64{
		l.Sigma * (s[1] - s[0]),
		s[0]*(l.Rho-s[2]) - s[1],
		s[0]*s[1] - l.Beta*s[2],
	}
}

// Step advances the state by one RK4 step.
func (l *Lorenz63) Step(s [3]float64) [3]float64 {
	k1 := l.tendency(s)
	k2 := l.tendency(add3(s, scale3(k1, 0.5*l.Dt)))
	k3 := l.tendency(add3(s, scale3(k2, 0.5*l.Dt)))
	k4 := l.tendency(add3(s, scale3(k3, l.Dt)))
	for j := 0; j < 3; j++ {
		s[j] += l.Dt / 6 * (k1[j] + 2*k2[j] + 2*k3[j] + k4[j])
	}
	return s
}

func add3(a, b [3]float64) [3]float64 {
	return [3]float64{a[0] + b[0], a[1] + b[1], a[2] + b[2]}
}

func scale3(a [3]float64, f float64) [3]float64 {
	return [3]float64{a[0] * f, a[1] * f, a[2] * f}
}

// Trajectory integrates from a spun-up random initial condition and returns
// `samples` states sampled every `stride` RK4 steps as a samples×3 matrix.
func (l *Lorenz63) Trajectory(samples, stride int, rng *tensor.RNG) (*tensor.Matrix, error) {
	if samples < 1 || stride < 1 {
		return nil, fmt.Errorf("chaos: invalid trajectory request %d×%d", samples, stride)
	}
	s := [3]float64{1 + rng.NormFloat64(), 1 + rng.NormFloat64(), 20 + rng.NormFloat64()}
	for i := 0; i < 5000; i++ {
		s = l.Step(s)
	}
	out := tensor.NewMatrix(samples, 3)
	for k := 0; k < samples; k++ {
		copy(out.Row(k), s[:])
		for i := 0; i < stride; i++ {
			s = l.Step(s)
		}
	}
	return out, nil
}

// StandardizedSeries returns the three state components over `length`
// samples (stride RK4 steps apart), each standardized to zero mean and unit
// variance over the window, as a 3×length matrix.
func (l *Lorenz63) StandardizedSeries(length, stride int, rng *tensor.RNG) (*tensor.Matrix, error) {
	traj, err := l.Trajectory(length, stride, rng)
	if err != nil {
		return nil, err
	}
	out := tensor.NewMatrix(3, length)
	for c := 0; c < 3; c++ {
		row := out.Row(c)
		var mean float64
		for k := 0; k < length; k++ {
			row[k] = traj.At(k, c)
			mean += row[k]
		}
		mean /= float64(length)
		var variance float64
		for k := range row {
			row[k] -= mean
			variance += row[k] * row[k]
		}
		variance /= float64(length)
		if variance > 1e-12 {
			inv := 1 / math.Sqrt(variance)
			for k := range row {
				row[k] *= inv
			}
		}
	}
	return out, nil
}
