// Package chaos implements the Lorenz-96 system, the canonical chaotic
// model of mid-latitude atmospheric dynamics (and the benchmark used by the
// data-driven geophysical emulation literature the paper builds on, e.g.
// Chattopadhyay et al. 2019). The synthetic SST generator drives its eddy
// and seasonal-envelope processes with Lorenz-96 trajectories so that the
// POD coefficient dynamics are genuinely nonlinear: linear regressors can
// only exploit the short linear predictability horizon while sequence
// models can learn the propagator — the behaviour behind the paper's
// Table II ordering.
package chaos

import (
	"fmt"
	"math"

	"podnas/internal/tensor"
)

// Lorenz96 holds the model configuration:
//
//	dx_j/dt = (x_{j+1} − x_{j-2}) x_{j-1} − x_j + F
//
// with cyclic indexing. F = 8 gives the standard chaotic regime with an
// error-doubling time of ~0.4 model time units.
type Lorenz96 struct {
	// N is the state dimension (≥ 4 for chaos).
	N int
	// F is the constant forcing (8 = standard chaotic regime).
	F float64
	// Dt is the integration step (RK4); 0.01–0.05 is accurate.
	Dt float64
}

// NewLorenz96 returns the standard chaotic configuration.
func NewLorenz96(n int) (*Lorenz96, error) {
	if n < 4 {
		return nil, fmt.Errorf("chaos: Lorenz-96 needs at least 4 variables, got %d", n)
	}
	return &Lorenz96{N: n, F: 8, Dt: 0.02}, nil
}

// tendency writes dx/dt into out.
func (l *Lorenz96) tendency(x, out []float64) {
	n := l.N
	for j := 0; j < n; j++ {
		xp1 := x[(j+1)%n]
		xm2 := x[(j-2+n)%n]
		xm1 := x[(j-1+n)%n]
		out[j] = (xp1-xm2)*xm1 - x[j] + l.F
	}
}

// Step advances x in place by one RK4 step of size Dt.
func (l *Lorenz96) Step(x []float64) {
	n := l.N
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	tmp := make([]float64, n)

	l.tendency(x, k1)
	for j := 0; j < n; j++ {
		tmp[j] = x[j] + 0.5*l.Dt*k1[j]
	}
	l.tendency(tmp, k2)
	for j := 0; j < n; j++ {
		tmp[j] = x[j] + 0.5*l.Dt*k2[j]
	}
	l.tendency(tmp, k3)
	for j := 0; j < n; j++ {
		tmp[j] = x[j] + l.Dt*k3[j]
	}
	l.tendency(tmp, k4)
	for j := 0; j < n; j++ {
		x[j] += l.Dt / 6 * (k1[j] + 2*k2[j] + 2*k3[j] + k4[j])
	}
}

// InitialState returns a randomized state near the attractor (F plus small
// perturbations), suitable after a spin-up.
func (l *Lorenz96) InitialState(rng *tensor.RNG) []float64 {
	x := make([]float64, l.N)
	for j := range x {
		x[j] = l.F + 0.5*rng.NormFloat64()
	}
	return x
}

// Trajectory integrates from a spun-up random initial condition and returns
// `samples` states sampled every `stride` RK4 steps, as a samples×N matrix.
// A spin-up of 2000 steps puts the state on the attractor first.
func (l *Lorenz96) Trajectory(samples, stride int, rng *tensor.RNG) (*tensor.Matrix, error) {
	if samples < 1 || stride < 1 {
		return nil, fmt.Errorf("chaos: invalid trajectory request %d×%d", samples, stride)
	}
	x := l.InitialState(rng)
	for i := 0; i < 2000; i++ {
		l.Step(x)
	}
	out := tensor.NewMatrix(samples, l.N)
	for s := 0; s < samples; s++ {
		copy(out.Row(s), x)
		for i := 0; i < stride; i++ {
			l.Step(x)
		}
	}
	return out, nil
}

// StandardizedSeries returns k independent-looking series of the given
// length: the first k components of one trajectory, each standardized to
// zero mean and unit variance over the returned window. stride controls the
// sampling interval (larger stride = faster decorrelation between
// consecutive samples).
func (l *Lorenz96) StandardizedSeries(k, length, stride int, rng *tensor.RNG) (*tensor.Matrix, error) {
	if k > l.N {
		return nil, fmt.Errorf("chaos: requested %d series from %d variables", k, l.N)
	}
	traj, err := l.Trajectory(length, stride, rng)
	if err != nil {
		return nil, err
	}
	out := tensor.NewMatrix(k, length)
	for p := 0; p < k; p++ {
		row := out.Row(p)
		var mean float64
		for s := 0; s < length; s++ {
			row[s] = traj.At(s, p)
			mean += row[s]
		}
		mean /= float64(length)
		var variance float64
		for s := range row {
			row[s] -= mean
			variance += row[s] * row[s]
		}
		variance /= float64(length)
		if variance > 1e-12 {
			inv := 1 / math.Sqrt(variance)
			for s := range row {
				row[s] *= inv
			}
		}
	}
	return out, nil
}
