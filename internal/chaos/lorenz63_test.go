package chaos

import (
	"math"
	"testing"

	"podnas/internal/tensor"
)

func TestLorenz63Bounded(t *testing.T) {
	l := NewLorenz63()
	s := [3]float64{1, 1, 20}
	for i := 0; i < 50000; i++ {
		s = l.Step(s)
		for _, v := range s {
			if math.IsNaN(v) || math.Abs(v) > 100 {
				t.Fatalf("state escaped: %v", s)
			}
		}
	}
}

func TestLorenz63Chaotic(t *testing.T) {
	l := NewLorenz63()
	a := [3]float64{1, 1, 20}
	for i := 0; i < 5000; i++ {
		a = l.Step(a)
	}
	b := a
	b[0] += 1e-9
	for i := 0; i < 3000; i++ { // 30 time units
		a = l.Step(a)
		b = l.Step(b)
	}
	d := math.Hypot(math.Hypot(a[0]-b[0], a[1]-b[1]), a[2]-b[2])
	if d < 1e-2 {
		t.Errorf("perturbation grew only to %g", d)
	}
}

func TestLorenz63LobeSwitching(t *testing.T) {
	// The x component must change sign many times over a long run (the
	// two-lobe structure driving the unpredictable phase flips).
	l := NewLorenz63()
	s := [3]float64{1, 1, 20}
	for i := 0; i < 5000; i++ {
		s = l.Step(s)
	}
	switches := 0
	prev := s[0] > 0
	for i := 0; i < 100000; i++ {
		s = l.Step(s)
		cur := s[0] > 0
		if cur != prev {
			switches++
			prev = cur
		}
	}
	if switches < 50 {
		t.Errorf("only %d lobe switches in 1000 time units", switches)
	}
}

func TestLorenz63TrajectoryDeterminism(t *testing.T) {
	l := NewLorenz63()
	a, err := l.Trajectory(100, 5, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := l.Trajectory(100, 5, tensor.NewRNG(1))
	if !a.Equal(b, 0) {
		t.Error("same seed gave different trajectories")
	}
	if _, err := l.Trajectory(0, 5, tensor.NewRNG(1)); err == nil {
		t.Error("zero samples should fail")
	}
}

func TestLorenz63StandardizedSeriesMoments(t *testing.T) {
	l := NewLorenz63()
	s, err := l.StandardizedSeries(1000, 8, tensor.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows != 3 || s.Cols != 1000 {
		t.Fatalf("series shape %dx%d", s.Rows, s.Cols)
	}
	for c := 0; c < 3; c++ {
		var mean, variance float64
		row := s.Row(c)
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		for _, v := range row {
			variance += (v - mean) * (v - mean)
		}
		variance /= float64(len(row))
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-9 {
			t.Errorf("component %d mean %g var %g", c, mean, variance)
		}
	}
}
