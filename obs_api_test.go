package podnas

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"testing"
	"time"

	"podnas/internal/arch"
	"podnas/internal/metrics"
	"podnas/internal/obs"
	"podnas/internal/tensor"
)

// hashEval is a deterministic stand-in for the training evaluator: reward is
// a pure function of the architecture and seed, with a small reward-derived
// delay so evaluations occupy real (but bounded) wall-clock intervals.
type hashEval struct{ delay time.Duration }

func (h hashEval) Evaluate(a arch.Arch, seed uint64) (float64, error) {
	x := uint64(1469598103934665603)
	for _, g := range a {
		x = (x ^ uint64(g)) * 1099511628211
	}
	r := tensor.NewRNG(x ^ seed*0x9e3779b97f4a7c15).Float64()
	if h.delay > 0 {
		time.Sleep(time.Duration(float64(h.delay) * (0.5 + r)))
	}
	return r, nil
}

// failEval never succeeds, with a permanent (non-transient) error.
type failEval struct{}

func (failEval) Evaluate(arch.Arch, uint64) (float64, error) {
	return 0, errors.New("permanent failure")
}

// TestLiveMetricsMatchPostHoc is the acceptance check for the observability
// layer: on a deterministic single-worker run, the streaming aggregator's
// final moving-average reward and utilization AUC must match the same
// quantities recomputed post-hoc from the recorded event log to 1e-9.
func TestLiveMetricsMatchPostHoc(t *testing.T) {
	p := pipeline(t)
	const workers, evals = 1, 30
	ring := obs.NewRing(4 * evals)
	met := obs.NewMetrics(workers)
	opts := DefaultSearchOptions()
	opts.Workers = workers
	opts.MaxEvals = evals
	opts.Seed = 42
	opts.Evaluator = hashEval{delay: time.Millisecond}
	opts.Recorder = obs.NewMulti(ring, met)
	res, err := Search(p, MethodRS, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != evals {
		t.Fatalf("got %d results", len(res.Results))
	}

	// Post-hoc recomputation from the event log the sinks shared.
	starts := make(map[int]time.Duration)
	var busy, lastT time.Duration
	var rewards []float64
	for _, e := range ring.Events() {
		if e.T > lastT {
			lastT = e.T
		}
		switch e.Kind {
		case obs.KindEvalStart:
			starts[e.Eval] = e.T
		case obs.KindEvalFinish:
			busy += e.T - starts[e.Eval]
			rewards = append(rewards, e.Reward)
		case obs.KindEvalError:
			busy += e.T - starts[e.Eval]
		}
	}
	if len(rewards) != evals {
		t.Fatalf("event log holds %d finishes, want %d", len(rewards), evals)
	}
	ma := metrics.MovingAverage(rewards, 100)
	wantMA := ma[len(ma)-1]
	wantAUC := busy.Seconds() / (float64(workers) * lastT.Seconds())

	s := met.Snapshot()
	if s.Evals != evals || s.Successes != evals || s.InFlight != 0 {
		t.Fatalf("snapshot %+v inconsistent with a clean %d-eval run", s, evals)
	}
	if diff := math.Abs(s.RewardMA - wantMA); diff > 1e-9 {
		t.Errorf("live reward MA %.12f vs post-hoc %.12f (|diff| %g)", s.RewardMA, wantMA, diff)
	}
	if diff := math.Abs(s.UtilizationAUC - wantAUC); diff > 1e-9 {
		t.Errorf("live utilization AUC %.12f vs post-hoc %.12f (|diff| %g)", s.UtilizationAUC, wantAUC, diff)
	}
	if s.UtilizationAUC <= 0 || s.UtilizationAUC > 1 {
		t.Errorf("utilization AUC %g outside (0, 1]", s.UtilizationAUC)
	}
	if s.BestReward != res.Best.Reward {
		t.Errorf("live best %.12f vs search best %.12f", s.BestReward, res.Best.Reward)
	}
}

func TestParseMethod(t *testing.T) {
	for name, want := range map[string]Method{
		"ae": MethodAE, "AE": MethodAE, "rs": MethodRS, "Rl": MethodRL,
	} {
		got, err := ParseMethod(name)
		if err != nil || got != want {
			t.Errorf("ParseMethod(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseMethod("bogus"); !errors.Is(err, ErrBadMethod) {
		t.Errorf("ParseMethod(bogus) err = %v, want ErrBadMethod", err)
	}
}

// TestSearchDeterministicReplay pins the unified-API determinism the
// removed SearchAE/SearchRS/SearchRL wrappers used to be tested
// through: the same seed and options replay the identical history.
func TestSearchDeterministicReplay(t *testing.T) {
	p := pipeline(t)
	opts := SearchOptions{Workers: 1, MaxEvals: 5, Epochs: 1, Population: 3, Sample: 2, Seed: 6, Evaluator: hashEval{}}
	a, err := Search(p, MethodAE, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(p, MethodAE, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(b.Results) || a.Best.Arch.Key() != b.Best.Arch.Key() {
		t.Fatal("same-seed Search runs disagree")
	}
	for i := range a.Results {
		if a.Results[i].Reward != b.Results[i].Reward || a.Results[i].Arch.Key() != b.Results[i].Arch.Key() {
			t.Fatalf("histories diverge at %d", i)
		}
	}

	// RL shape comes from the options fields (agents × workers × batches
	// evaluations).
	rl, err := Search(p, MethodRL, SearchOptions{Workers: 1, Epochs: 1, Seed: 7, Evaluator: hashEval{}, Agents: 2, WorkersPerAgent: 2, Batches: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rl.Results) != 4 {
		t.Fatalf("RL run produced %d results, want 4", len(rl.Results))
	}
}

func TestSearchSentinelErrors(t *testing.T) {
	p := pipeline(t)
	base := SearchOptions{Workers: 1, MaxEvals: 2, Epochs: 1, Seed: 1, Evaluator: hashEval{}}

	if _, err := Search(p, Method("NOPE"), base); !errors.Is(err, ErrBadMethod) {
		t.Errorf("unknown method err = %v, want ErrBadMethod", err)
	}
	bad := base
	bad.Workers = 0
	if _, err := Search(p, MethodAE, bad); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Workers=0 err = %v, want ErrBadOptions", err)
	}
	bad = base
	bad.MaxEvals = -1
	if _, err := Search(p, MethodRS, bad); !errors.Is(err, ErrBadOptions) {
		t.Errorf("MaxEvals=-1 err = %v, want ErrBadOptions", err)
	}
	bad = base
	bad.Agents = -2
	if _, err := Search(p, MethodRL, bad); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Agents=-2 err = %v, want ErrBadOptions", err)
	}

	// Every evaluation fails permanently: the budget is spent with nothing
	// to show for it.
	exhausted := base
	exhausted.Evaluator = failEval{}
	if _, err := Search(p, MethodRS, exhausted); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("all-fail err = %v, want ErrBudgetExhausted", err)
	}

	// A context cancelled before the first success is an interruption, not
	// an exhausted budget.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	interrupted := base
	interrupted.Ctx = ctx
	if _, err := Search(p, MethodRS, interrupted); !errors.Is(err, ErrInterrupted) {
		t.Errorf("pre-cancelled err = %v, want ErrInterrupted", err)
	}

	// The checkpoint sentinel surfaces through the root re-export.
	ckPath := t.TempDir() + "/bad.json"
	if err := os.WriteFile(ckPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(ckPath); !errors.Is(err, ErrBadCheckpoint) {
		t.Errorf("corrupt checkpoint err = %v, want ErrBadCheckpoint", err)
	}
}

// TestSearchRLDefaultsFromOptions: a zero RL shape takes the documented
// DefaultSearchOptions values (2 agents × 2 workers × 3 batches = 12 evals).
func TestSearchRLDefaultsFromOptions(t *testing.T) {
	p := pipeline(t)
	res, err := Search(p, MethodRL, SearchOptions{Workers: 1, Epochs: 1, Seed: 5, Evaluator: hashEval{}})
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultSearchOptions()
	want := def.Agents * def.WorkersPerAgent * def.Batches
	if len(res.Results) != want {
		t.Fatalf("defaulted RL run did %d evaluations, want %d", len(res.Results), want)
	}
}

// corruptedCopy loads a saved history, applies mutate to its JSON document,
// and writes the damaged variant to a fresh path.
func corruptedCopy(t *testing.T, path string, mutate func(doc map[string]any)) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	mutate(doc)
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir() + "/corrupt.json"
	if err := os.WriteFile(dst, out, 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestLoadSearchResultRejectsCorruption: every damaged variant of a saved
// history must be rejected with a descriptive error, never loaded as data.
func TestLoadSearchResultRejectsCorruption(t *testing.T) {
	p := pipeline(t)
	res, err := Search(p, MethodRS, SearchOptions{Workers: 1, MaxEvals: 3, Epochs: 1, Seed: 8, Evaluator: hashEval{}})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/hist.json"
	if err := res.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSearchResult(path); err != nil {
		t.Fatalf("pristine file must load: %v", err)
	}

	truncated := t.TempDir() + "/trunc.json"
	if err := os.WriteFile(truncated, []byte(`{"space":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSearchResult(truncated); err == nil {
		t.Error("truncated JSON should fail")
	}

	cases := map[string]func(doc map[string]any){
		"invalid space": func(doc map[string]any) {
			doc["space"] = map[string]any{}
		},
		"bad result arch": func(doc map[string]any) {
			results := doc["results"].([]any)
			results[0].(map[string]any)["arch"] = "not-an-arch"
		},
		"bad best arch": func(doc map[string]any) {
			doc["best_arch"] = "9-9-9"
		},
	}
	for name, mutate := range cases {
		dst := corruptedCopy(t, path, mutate)
		if _, err := LoadSearchResult(dst); err == nil {
			t.Errorf("%s: corrupted history loaded without error", name)
		} else if fmt.Sprint(err) == "" {
			t.Errorf("%s: empty error", name)
		}
	}
}
