package podnas

import (
	"fmt"
	"math"

	"podnas/internal/sst"
)

// RegionalRMSETable is the Table I reproduction: per-lead-week RMSE in a
// region for the POD-LSTM forecast and the CESM and HYCOM surrogates.
type RegionalRMSETable struct {
	// Predicted, CESM, HYCOM hold one RMSE (°C) per lead week 1..K.
	Predicted, CESM, HYCOM []float64
	// Weeks is the number of forecast start weeks aggregated.
	Weeks int
}

// RegionalRMSE computes Table I: for every forecast start week t in
// [startWeek, endWeek), the forecasts at leads 1..K are compared against
// the truth inside the region; errors are aggregated as the RMSE over all
// (start week, region point) pairs per lead.
func (m *Model) RegionalRMSE(region sst.Region, startWeek, endWeek int) (*RegionalRMSETable, error) {
	p := m.p
	k := p.Cfg.K
	if startWeek < p.Cfg.K {
		startWeek = p.Cfg.K
	}
	if endWeek > p.Data.Weeks()-k {
		endWeek = p.Data.Weeks() - k
	}
	if endWeek <= startWeek {
		return nil, fmt.Errorf("podnas: empty forecast range [%d, %d)", startWeek, endWeek)
	}
	idx := p.Data.RegionOceanIndices(region)
	if len(idx) == 0 {
		return nil, fmt.Errorf("podnas: region contains no ocean points")
	}
	table := &RegionalRMSETable{
		Predicted: make([]float64, k),
		CESM:      make([]float64, k),
		HYCOM:     make([]float64, k),
	}
	sumP := make([]float64, k)
	sumC := make([]float64, k)
	sumH := make([]float64, k)
	var count int
	for t := startWeek; t < endWeek; t++ {
		coeff, err := m.PredictCoefficients(t)
		if err != nil {
			return nil, err
		}
		for lead := 1; lead <= k; lead++ {
			week := t + lead - 1
			pred := p.Basis.ReconstructSnapshot(coeff.Row(lead - 1))
			cesm := p.Data.CESMField(week)
			hycom := p.Data.HYCOMField(week, lead)
			for _, i := range idx {
				truth := p.Data.Snapshots.At(i, week)
				dp := pred[i] - truth
				dc := cesm[i] - truth
				dh := hycom[i] - truth
				sumP[lead-1] += dp * dp
				sumC[lead-1] += dc * dc
				sumH[lead-1] += dh * dh
			}
		}
		count++
	}
	n := float64(count * len(idx))
	for lead := 0; lead < k; lead++ {
		table.Predicted[lead] = math.Sqrt(sumP[lead] / n)
		table.CESM[lead] = math.Sqrt(sumC[lead] / n)
		table.HYCOM[lead] = math.Sqrt(sumH[lead] / n)
	}
	table.Weeks = count
	return table, nil
}

// HYCOMWindow returns the forecast start-week range matching the paper's
// Table I period (the HYCOM availability window). When the configured
// record is too short to reach 2015 the test period is used instead, so
// small demo configurations still produce a table.
func (p *Pipeline) HYCOMWindow() (lo, hi int) {
	lo, hi = p.Data.HYCOMRange()
	if hi <= lo {
		lo, hi = p.NumTrain+p.Cfg.K, p.Data.Weeks()-p.Cfg.K
	}
	return lo, hi
}

// Probe is one Fig 7 time series: truth, POD-LSTM forecast, CESM and HYCOM
// surrogates at a single location.
type Probe struct {
	Lat, Lon                      float64
	Weeks                         []int
	Truth, Predicted, CESM, HYCOM []float64
}

// ProbeSeries extracts the Fig 7 comparison at (lat, lon) for forecast
// start weeks in [startWeek, endWeek): each sample is the lead-1 forecast
// of the corresponding week.
func (m *Model) ProbeSeries(lat, lon float64, startWeek, endWeek int) (*Probe, error) {
	p := m.p
	oi, err := p.Data.ProbeIndex(lat, lon)
	if err != nil {
		return nil, err
	}
	if startWeek < p.Cfg.K {
		startWeek = p.Cfg.K
	}
	// Each sample forecasts from window [t-K, t+K), so the last valid start
	// week is Weeks-K.
	if endWeek > p.Data.Weeks()-p.Cfg.K+1 {
		endWeek = p.Data.Weeks() - p.Cfg.K + 1
	}
	if endWeek <= startWeek {
		return nil, fmt.Errorf("podnas: empty probe range")
	}
	pr := &Probe{Lat: lat, Lon: lon}
	for t := startWeek; t < endWeek; t++ {
		field, err := m.ForecastField(t, 1)
		if err != nil {
			return nil, err
		}
		pr.Weeks = append(pr.Weeks, t)
		pr.Truth = append(pr.Truth, p.Data.Snapshots.At(oi, t))
		pr.Predicted = append(pr.Predicted, field[oi])
		pr.CESM = append(pr.CESM, p.Data.CESMField(t)[oi])
		pr.HYCOM = append(pr.HYCOM, p.Data.HYCOMField(t, 1)[oi])
	}
	return pr, nil
}

// FieldComparison is the Fig 6 reproduction for one week: the truth field
// and the three forecasts, plus their global-ocean RMSEs.
type FieldComparison struct {
	Week                               int
	Truth, Predicted, CESM, HYCOM      []float64
	RMSEPredicted, RMSECESM, RMSEHYCOM float64
}

// CompareFields builds the Fig 6 panel for the forecast of snapshot t at
// lead 1.
func (m *Model) CompareFields(t int) (*FieldComparison, error) {
	p := m.p
	pred, err := m.ForecastField(t, 1)
	if err != nil {
		return nil, err
	}
	fc := &FieldComparison{
		Week:      t,
		Truth:     p.Data.TruthField(t),
		Predicted: pred,
		CESM:      p.Data.CESMField(t),
		HYCOM:     p.Data.HYCOMField(t, 1),
	}
	rmse := func(a []float64) float64 {
		var s float64
		for i, v := range a {
			d := v - fc.Truth[i]
			s += d * d
		}
		return math.Sqrt(s / float64(len(a)))
	}
	fc.RMSEPredicted = rmse(fc.Predicted)
	fc.RMSECESM = rmse(fc.CESM)
	fc.RMSEHYCOM = rmse(fc.HYCOM)
	return fc, nil
}

// CoefficientTrace returns the true and predicted coefficient series of one
// POD mode over forecast start weeks [startWeek, endWeek) at lead 1 — the
// Fig 5 panels.
func (m *Model) CoefficientTrace(mode, startWeek, endWeek int) (truth, pred []float64, err error) {
	p := m.p
	if mode < 0 || mode >= p.Cfg.Nr {
		return nil, nil, fmt.Errorf("podnas: mode %d outside [0, %d)", mode, p.Cfg.Nr)
	}
	if startWeek < p.Cfg.K {
		startWeek = p.Cfg.K
	}
	if endWeek > p.Data.Weeks()-p.Cfg.K+1 {
		endWeek = p.Data.Weeks() - p.Cfg.K + 1
	}
	for t := startWeek; t < endWeek; t++ {
		coeff, cerr := m.PredictCoefficients(t)
		if cerr != nil {
			return nil, nil, cerr
		}
		truth = append(truth, p.Coeff.At(mode, t))
		pred = append(pred, coeff.At(0, mode))
	}
	return truth, pred, nil
}

// CESMCoefficientTrace projects the CESM surrogate onto the POD basis and
// returns one mode's series (the Fig 5 CESM overlay).
func (p *Pipeline) CESMCoefficientTrace(mode, startWeek, endWeek int) ([]float64, error) {
	if mode < 0 || mode >= p.Cfg.Nr {
		return nil, fmt.Errorf("podnas: mode %d outside [0, %d)", mode, p.Cfg.Nr)
	}
	var out []float64
	for t := startWeek; t < endWeek; t++ {
		field := p.Data.CESMField(t)
		// Project a single snapshot: ψᵀ(q − mean), row `mode`.
		var v float64
		for i, q := range field {
			v += p.Basis.Phi.At(i, mode) * (q - p.Basis.Mean[i])
		}
		out = append(out, v)
	}
	return out, nil
}
