package podnas

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md §4), plus the ablation benches DESIGN.md §5
// calls out and microbenchmarks of the heavy kernels. Each table/figure
// bench regenerates the experiment's data at a reduced (benchmark-friendly)
// budget; cmd/experiments runs the full-scale versions.

import (
	"sync"
	"testing"

	"podnas/internal/arch"
	"podnas/internal/baseline"
	"podnas/internal/hpcsim"
	"podnas/internal/nn"
	"podnas/internal/pod"
	"podnas/internal/search"
	"podnas/internal/sst"
	"podnas/internal/tensor"
	"podnas/internal/window"
)

var (
	benchOnce sync.Once
	benchPipe *Pipeline
)

func benchPipeline(b *testing.B) *Pipeline {
	b.Helper()
	benchOnce.Do(func() {
		p, err := NewPipeline(SmallPipelineConfig())
		if err != nil {
			b.Fatal(err)
		}
		benchPipe = p
	})
	return benchPipe
}

// BenchmarkTable1RegionalRMSE regenerates the Table I weekly RMSE rows
// (POD-LSTM vs CESM vs HYCOM in the Eastern Pacific).
func BenchmarkTable1RegionalRMSE(b *testing.B) {
	p := benchPipeline(b)
	m, err := p.ManualLSTM(16, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Posttrain(10, 1); err != nil {
		b.Fatal(err)
	}
	lo, _ := p.HYCOMWindow()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := m.RegionalRMSE(sst.EasternPacific, lo, lo+12)
		if err != nil {
			b.Fatal(err)
		}
		if table.Predicted[0] <= 0 {
			b.Fatal("degenerate table")
		}
	}
}

// BenchmarkTable2Baselines regenerates the Table II baseline rows (linear,
// boosted trees, random forest) plus one manual LSTM.
func BenchmarkTable2Baselines(b *testing.B) {
	p := benchPipeline(b)
	raw := func(w *window.Dataset) *window.Dataset {
		x := w.X.Clone()
		p.Scaler.Inverse(x)
		y := w.Y.Clone()
		p.Scaler.Inverse(y)
		return &window.Dataset{X: x, Y: y, K: w.K, Nr: w.Nr}
	}
	trainD := raw(p.TrainWin)
	testD := raw(p.TestWin)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, reg := range []baseline.Regressor{baseline.NewLinear(), baseline.NewGradientBoosting(), baseline.NewRandomForest()} {
			if err := baseline.FitWindowed(reg, trainD); err != nil {
				b.Fatal(err)
			}
			_ = baseline.EvaluateR2(reg, testD)
		}
		m, err := p.ManualLSTM(16, 1, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Posttrain(5, uint64(i)); err != nil {
			b.Fatal(err)
		}
		_ = m.TestR2()
	}
}

// BenchmarkTable3Scaling regenerates one Table III row (33 nodes, all three
// methods) in the cluster simulator.
func BenchmarkTable3Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range []hpcsim.Method{hpcsim.MethodAE, hpcsim.MethodRL, hpcsim.MethodRS} {
			st, err := hpcsim.Run(hpcsim.Config{Method: m, Nodes: 33, Seed: uint64(i) + 7, Space: arch.Default()})
			if err != nil {
				b.Fatal(err)
			}
			if st.Evaluations == 0 {
				b.Fatal("no evaluations")
			}
		}
	}
}

// BenchmarkFig3SearchTrajectories regenerates the Fig 3 reward-vs-time
// trajectory for AE at 128 simulated nodes.
func BenchmarkFig3SearchTrajectories(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := hpcsim.Run(hpcsim.Config{Method: hpcsim.MethodAE, Nodes: 128, Seed: uint64(i) + 9, Space: arch.Default()})
		if err != nil {
			b.Fatal(err)
		}
		if st.RewardCurve.Len() == 0 {
			b.Fatal("empty trajectory")
		}
	}
}

// BenchmarkFig5Posttraining regenerates the Fig 5 posttraining convergence
// trace (loss per epoch) for a search-space architecture.
func BenchmarkFig5Posttraining(b *testing.B) {
	p := benchPipeline(b)
	space := p.DefaultSpace()
	a := space.Random(tensor.NewRNG(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := p.BuildArch(space, a, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		losses, err := m.Posttrain(10, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(losses) != 10 {
			b.Fatal("missing convergence trace")
		}
	}
}

// BenchmarkFig8HighPerformers regenerates the Fig 8 unique-high-performer
// counts at two node counts.
func BenchmarkFig8HighPerformers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, nodes := range []int{33, 64} {
			st, err := hpcsim.Run(hpcsim.Config{Method: hpcsim.MethodAE, Nodes: nodes, Seed: uint64(i) + 11, Space: arch.Default()})
			if err != nil {
				b.Fatal(err)
			}
			if st.HighPerfCurve.Len() == 0 {
				b.Fatal("empty high-performer curve")
			}
		}
	}
}

// BenchmarkFig9Variability regenerates a reduced Fig 9 variability study
// (3 seeds × AE/RL at 33 nodes).
func BenchmarkFig9Variability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range []hpcsim.Method{hpcsim.MethodAE, hpcsim.MethodRL} {
			for k := 0; k < 3; k++ {
				if _, err := hpcsim.Run(hpcsim.Config{Method: m, Nodes: 33, Seed: uint64(i*3+k) + 13, Space: arch.Default()}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkAblationAgingVsNonAging compares aging evolution against the
// worst-replacement variant under reward noise (DESIGN.md §5).
func BenchmarkAblationAgingVsNonAging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range []hpcsim.Method{hpcsim.MethodAE, hpcsim.MethodNonAging} {
			if _, err := hpcsim.Run(hpcsim.Config{Method: m, Nodes: 33, Seed: uint64(i) + 17, Space: arch.Default()}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationConstantCost compares the parameter-proportional
// evaluation-cost model against a constant-cost variant (DESIGN.md §5: the
// mechanism behind AE's throughput advantage).
func BenchmarkAblationConstantCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cc := range []bool{false, true} {
			if _, err := hpcsim.Run(hpcsim.Config{Method: hpcsim.MethodAE, Nodes: 33, Seed: uint64(i) + 19, Space: arch.Default(), ConstantCost: cc}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationMergeReLU compares training with and without the
// post-merge ReLU (DESIGN.md §5).
func BenchmarkAblationMergeReLU(b *testing.B) {
	p := benchPipeline(b)
	space := p.DefaultSpace()
	// An architecture with several active skips.
	a := make(arch.Arch, space.NumVariables())
	for i := range a {
		if space.NumChoices(i) == 2 {
			a[i] = 1 // all skips on
		} else {
			a[i] = 2 // LSTM(32) everywhere
		}
	}
	spec, err := space.ToGraphSpec(a)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, noRelu := range []bool{false, true} {
			s := spec
			s.NoMergeReLU = noRelu
			g, err := nn.NewGraph(s, tensor.NewRNG(uint64(i)))
			if err != nil {
				b.Fatal(err)
			}
			cfg := nn.DefaultTrainConfig()
			cfg.Epochs = 3
			if _, err := nn.Train(g, p.TrainWin.X, p.TrainWin.Y, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- microbenchmarks of the heavy kernels ---

func BenchmarkMatMul128(b *testing.B) {
	rng := tensor.NewRNG(1)
	x := tensor.NewMatrix(128, 128)
	y := tensor.NewMatrix(128, 128)
	rng.FillNormal(x.Data, 1)
	rng.FillNormal(y.Data, 1)
	dst := tensor.NewMatrix(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(dst, x, y)
	}
}

func BenchmarkLSTMForwardBackward(b *testing.B) {
	rng := tensor.NewRNG(2)
	l := nn.NewLSTM("bench", 5, 80, rng)
	x := tensor.NewTensor3(64, 8, 5)
	rng.FillNormal(x.Data, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := l.Forward(x)
		l.Backward(y)
	}
}

func BenchmarkPODCompute(b *testing.B) {
	rng := tensor.NewRNG(3)
	s := tensor.NewMatrix(1200, 120)
	rng.FillNormal(s.Data, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pod.Compute(s, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAEProposalThroughput(b *testing.B) {
	space := arch.Default()
	ae, err := search.NewAgingEvolution(space, 100, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := ae.Propose()
		ae.Report(a, float64(i%100)/100)
	}
}

func BenchmarkSyntheticSSTGeneration(b *testing.B) {
	cfg := sst.Small()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		if _, err := sst.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAutoregressive contrasts the paper's non-autoregressive
// protocol with feedback forecasting (the extension discussed in §IV-B:
// "the outputs of the LSTM forecast are not reused as inputs").
func BenchmarkAblationAutoregressive(b *testing.B) {
	p := benchPipeline(b)
	m, err := p.ManualLSTM(16, 1, 31)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Posttrain(10, 31); err != nil {
		b.Fatal(err)
	}
	lo := p.NumTrain + p.Cfg.K
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.AutoregressiveRMSE(lo, lo+10, 2*p.Cfg.K); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForecastThroughput measures the deployed-emulator cost the paper
// quotes in §IV-C (complete POD-coefficient forecasts "almost
// instantaneously", full-field reconstruction via one linear operation):
// one 8-week coefficient forecast plus a full-field reconstruction.
func BenchmarkForecastThroughput(b *testing.B) {
	p := benchPipeline(b)
	m, err := p.ManualLSTM(80, 1, 41)
	if err != nil {
		b.Fatal(err)
	}
	week := p.NumTrain + 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ForecastField(week, 1); err != nil {
			b.Fatal(err)
		}
	}
}
