package podnas

import (
	"math"
	"testing"

	"podnas/internal/nn"
	"podnas/internal/sst"
	"podnas/internal/tensor"
)

// smallPipeline is shared across tests (generation is deterministic, and
// the pipeline is read-only after construction except for model training).
var smallPipeline *Pipeline

func pipeline(t *testing.T) *Pipeline {
	t.Helper()
	if smallPipeline == nil {
		p, err := NewPipeline(SmallPipelineConfig())
		if err != nil {
			t.Fatal(err)
		}
		smallPipeline = p
	}
	return smallPipeline
}

func TestPipelineConfigValidation(t *testing.T) {
	cfg := SmallPipelineConfig()
	cfg.Nr = 0
	if _, err := NewPipeline(cfg); err == nil {
		t.Error("Nr=0 should fail")
	}
	cfg = SmallPipelineConfig()
	cfg.K = 0
	if _, err := NewPipeline(cfg); err == nil {
		t.Error("K=0 should fail")
	}
	cfg = SmallPipelineConfig()
	cfg.Data.Weeks = 40 // test period too short for a single window
	if _, err := NewPipeline(cfg); err == nil {
		t.Error("tiny record should fail")
	}
}

func TestPipelineShapes(t *testing.T) {
	p := pipeline(t)
	if p.Coeff.Rows != 5 || p.Coeff.Cols != p.Data.Weeks() {
		t.Errorf("coefficient matrix %dx%d", p.Coeff.Rows, p.Coeff.Cols)
	}
	nTrainWindows := p.NumTrain - 2*p.Cfg.K + 1
	if p.TrainWin.Examples()+p.ValWin.Examples() != nTrainWindows {
		t.Errorf("train %d + val %d != %d windows", p.TrainWin.Examples(), p.ValWin.Examples(), nTrainWindows)
	}
	wantTest := (p.Data.Weeks() - p.NumTrain) - 2*p.Cfg.K + 1
	if p.TestWin.Examples() != wantTest {
		t.Errorf("test windows %d, want %d", p.TestWin.Examples(), wantTest)
	}
	if e := p.EnergyCaptured(); e < 0.8 || e > 1 {
		t.Errorf("energy captured %.3f outside plausible range", e)
	}
}

func TestScaledTrainingTargetsInRange(t *testing.T) {
	p := pipeline(t)
	for _, v := range p.TrainWin.Y.Data {
		if math.Abs(v) > 1 {
			t.Fatalf("scaled training target %g unreachable by the LSTM output layer", v)
		}
	}
}

func TestManualLSTMTrainEval(t *testing.T) {
	p := pipeline(t)
	m, err := p.ManualLSTM(16, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := m.ValR2()
	losses, err := m.Posttrain(30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 30 {
		t.Errorf("got %d epoch losses", len(losses))
	}
	if losses[29] >= losses[0] {
		t.Errorf("loss did not decrease: %g → %g", losses[0], losses[29])
	}
	after := m.ValR2()
	if after <= before {
		t.Errorf("validation R² did not improve: %.3f → %.3f", before, after)
	}
	// Metrics must be internally consistent and finite.
	for name, v := range map[string]float64{"val": after, "train": m.TrainR2(), "test": m.TestR2()} {
		if math.IsNaN(v) || v > 1 {
			t.Errorf("%s R² = %g", name, v)
		}
	}
	if m.ParamCount() != 4*16*(5+16+1)+4*5*(16+5+1) {
		t.Errorf("ParamCount = %d", m.ParamCount())
	}
}

func TestPosttrainValidation(t *testing.T) {
	p := pipeline(t)
	m, _ := p.ManualLSTM(8, 1, 1)
	if _, err := m.Posttrain(0, 1); err == nil {
		t.Error("zero epochs should fail")
	}
}

func TestBuildArchAndDescribe(t *testing.T) {
	p := pipeline(t)
	space := p.DefaultSpace()
	a := space.Random(tensor.NewRNG(99))
	m, err := p.BuildArch(space, a, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Desc == "" {
		t.Error("empty architecture description")
	}
	if _, err := m.SearchTrain(1); err != nil {
		t.Fatal(err)
	}
}

func TestPredictCoefficientsBounds(t *testing.T) {
	p := pipeline(t)
	m, _ := p.ManualLSTM(8, 1, 1)
	if _, err := m.PredictCoefficients(3); err == nil {
		t.Error("window before record start should fail")
	}
	if _, err := m.PredictCoefficients(p.Data.Weeks() - 2); err == nil {
		t.Error("window past record end should fail")
	}
	coeff, err := m.PredictCoefficients(p.NumTrain + 10)
	if err != nil {
		t.Fatal(err)
	}
	if coeff.Rows != p.Cfg.K || coeff.Cols != p.Cfg.Nr {
		t.Errorf("coefficient forecast shape %dx%d", coeff.Rows, coeff.Cols)
	}
}

func TestForecastFieldPhysical(t *testing.T) {
	p := pipeline(t)
	m, _ := p.ManualLSTM(16, 1, 2)
	if _, err := m.Posttrain(20, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ForecastField(p.NumTrain+10, 0); err == nil {
		t.Error("lead 0 should fail")
	}
	if _, err := m.ForecastField(p.NumTrain+10, p.Cfg.K+1); err == nil {
		t.Error("lead > K should fail")
	}
	field, err := m.ForecastField(p.NumTrain+10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(field) != p.Data.Nh() {
		t.Fatalf("field length %d", len(field))
	}
	for _, v := range field {
		if v < -15 || v > 50 {
			t.Fatalf("forecast temperature %g implausible", v)
		}
	}
}

func TestRegionalRMSETable(t *testing.T) {
	p := pipeline(t)
	m, _ := p.ManualLSTM(16, 1, 3)
	if _, err := m.Posttrain(20, 3); err != nil {
		t.Fatal(err)
	}
	lo, hi := p.HYCOMWindow()
	if hi-lo > 40 {
		hi = lo + 40
	}
	table, err := m.RegionalRMSE(sst.EasternPacific, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Predicted) != p.Cfg.K {
		t.Fatalf("table has %d leads", len(table.Predicted))
	}
	for lead := 0; lead < p.Cfg.K; lead++ {
		if table.Predicted[lead] <= 0 || table.Predicted[lead] > 5 {
			t.Errorf("lead %d predicted RMSE %.2f implausible", lead+1, table.Predicted[lead])
		}
		// The Table I ordering: POD-LSTM < HYCOM < CESM.
		if table.CESM[lead] < table.HYCOM[lead] {
			t.Errorf("lead %d: CESM %.2f should exceed HYCOM %.2f", lead+1, table.CESM[lead], table.HYCOM[lead])
		}
	}
	if _, err := m.RegionalRMSE(sst.Region{LatMin: 45, LatMax: 55, LonMin: 70, LonMax: 90}, lo, hi); err == nil {
		t.Error("all-land region (central Eurasia) should fail")
	}
	if _, err := m.RegionalRMSE(sst.EasternPacific, 100, 100); err == nil {
		t.Error("empty week range should fail")
	}
}

func TestProbeSeries(t *testing.T) {
	p := pipeline(t)
	m, _ := p.ManualLSTM(8, 1, 4)
	if _, err := m.SearchTrain(4); err != nil {
		t.Fatal(err)
	}
	lo := p.NumTrain + p.Cfg.K
	pr, err := m.ProbeSeries(-5, 210, lo, lo+20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Truth) != 20 || len(pr.Predicted) != 20 || len(pr.CESM) != 20 || len(pr.HYCOM) != 20 {
		t.Fatalf("probe lengths %d/%d/%d/%d", len(pr.Truth), len(pr.Predicted), len(pr.CESM), len(pr.HYCOM))
	}
	if _, err := m.ProbeSeries(52, 80, lo, lo+5); err == nil {
		t.Error("land probe should fail")
	}
}

func TestCompareFields(t *testing.T) {
	p := pipeline(t)
	m, _ := p.ManualLSTM(16, 1, 5)
	if _, err := m.Posttrain(20, 5); err != nil {
		t.Fatal(err)
	}
	fc, err := m.CompareFields(p.NumTrain + 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.Truth) != p.Data.Nh() || len(fc.Predicted) != p.Data.Nh() {
		t.Fatal("field lengths wrong")
	}
	if fc.RMSEPredicted <= 0 || fc.RMSECESM <= 0 || fc.RMSEHYCOM <= 0 {
		t.Error("nonpositive RMSE")
	}
	// Note: the paper's CESM-vs-HYCOM ordering is a *regional* (Eastern
	// Pacific) statement — globally the HYCOM surrogate's uniform noise can
	// exceed CESM's tropics-focused bias, so only sanity is asserted here;
	// the ordering is covered by TestRegionalRMSETable.
}

func TestCoefficientTraces(t *testing.T) {
	p := pipeline(t)
	m, _ := p.ManualLSTM(8, 1, 6)
	if _, err := m.SearchTrain(6); err != nil {
		t.Fatal(err)
	}
	lo := p.NumTrain + p.Cfg.K
	truth, pred, err := m.CoefficientTrace(0, lo, lo+15)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != 15 || len(pred) != 15 {
		t.Fatalf("trace lengths %d/%d", len(truth), len(pred))
	}
	if _, _, err := m.CoefficientTrace(9, lo, lo+5); err == nil {
		t.Error("mode out of range should fail")
	}
	cesm, err := p.CESMCoefficientTrace(0, lo, lo+15)
	if err != nil {
		t.Fatal(err)
	}
	if len(cesm) != 15 {
		t.Fatalf("CESM trace length %d", len(cesm))
	}
	if _, err := p.CESMCoefficientTrace(9, lo, lo+5); err == nil {
		t.Error("CESM mode out of range should fail")
	}
}

func TestSearchAESmall(t *testing.T) {
	p := pipeline(t)
	opts := SearchOptions{Workers: 2, MaxEvals: 6, Epochs: 2, Population: 4, Sample: 2, Seed: 1}
	res, err := Search(p, MethodAE, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 6 {
		t.Fatalf("got %d results", len(res.Results))
	}
	if res.BestDesc == "" {
		t.Error("no best description")
	}
	if res.Best.Reward < -1 || res.Best.Reward > 1 {
		t.Errorf("best reward %g out of range", res.Best.Reward)
	}
}

func TestSearchRSAndRLSmall(t *testing.T) {
	p := pipeline(t)
	opts := SearchOptions{Workers: 2, MaxEvals: 4, Epochs: 1, Seed: 2}
	if _, err := Search(p, MethodRS, opts); err != nil {
		t.Fatal(err)
	}
	opts.Agents, opts.WorkersPerAgent, opts.Batches = 2, 2, 1
	if _, err := Search(p, MethodRL, opts); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateScalingDefaults(t *testing.T) {
	st, err := SimulateScaling(ScalingConfig{Method: MethodAE, Nodes: 16, Seed: 3, WallTime: 1800})
	if err != nil {
		t.Fatal(err)
	}
	if st.Evaluations == 0 {
		t.Error("no evaluations in simulated run")
	}
	if st.Utilization <= 0 || st.Utilization > 1 {
		t.Errorf("utilization %g", st.Utilization)
	}
}

func TestHYCOMWindowFallback(t *testing.T) {
	p := pipeline(t)
	lo, hi := p.HYCOMWindow()
	if hi <= lo {
		t.Fatalf("empty HYCOM window [%d, %d)", lo, hi)
	}
	if lo < p.NumTrain {
		t.Errorf("fallback window starts at %d inside the training period", lo)
	}
}

func TestPredictAutoregressive(t *testing.T) {
	p := pipeline(t)
	m, _ := p.ManualLSTM(16, 1, 9)
	if _, err := m.Posttrain(25, 9); err != nil {
		t.Fatal(err)
	}
	start := p.NumTrain + p.Cfg.K
	pred, err := m.PredictAutoregressive(start, 20)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Rows != 20 || pred.Cols != p.Cfg.Nr {
		t.Fatalf("autoregressive forecast shape %dx%d", pred.Rows, pred.Cols)
	}
	// The first K leads must match the non-autoregressive forecast exactly
	// (the feedback only kicks in after one chunk).
	direct, err := m.PredictCoefficients(start)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < p.Cfg.K; step++ {
		for r := 0; r < p.Cfg.Nr; r++ {
			if math.Abs(pred.At(step, r)-direct.At(step, r)) > 1e-9 {
				t.Fatalf("first-chunk mismatch at (%d,%d)", step, r)
			}
		}
	}
	if _, err := m.PredictAutoregressive(start, 0); err == nil {
		t.Error("zero horizon should fail")
	}
	if _, err := m.PredictAutoregressive(2, 4); err == nil {
		t.Error("start before K should fail")
	}
}

func TestAutoregressiveErrorGrows(t *testing.T) {
	// The paper's rationale for the non-autoregressive protocol: feedback
	// forecasts accumulate error with horizon.
	p := pipeline(t)
	m, _ := p.ManualLSTM(16, 1, 10)
	if _, err := m.Posttrain(25, 10); err != nil {
		t.Fatal(err)
	}
	lo := p.NumTrain + p.Cfg.K
	rmse, err := m.AutoregressiveRMSE(lo, lo+25, 3*p.Cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	if len(rmse) != 3*p.Cfg.K {
		t.Fatalf("got %d leads", len(rmse))
	}
	early := (rmse[0] + rmse[1]) / 2
	late := (rmse[len(rmse)-1] + rmse[len(rmse)-2]) / 2
	if late <= early {
		t.Errorf("autoregressive error did not grow: early %.2f late %.2f", early, late)
	}
	if _, err := m.AutoregressiveRMSE(50, 50, 4); err == nil {
		t.Error("empty range should fail")
	}
}

func TestVariabilityStudy(t *testing.T) {
	res, err := VariabilityStudy(MethodAE, 16, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 3 || len(res.FinalRewards) != 3 || len(res.Utilizations) != 3 {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.RewardMean.Len() == 0 || res.UtilMean.Len() != res.UtilLo.Len() {
		t.Error("band curves missing or inconsistent")
	}
	for i := range res.RewardMean.Y {
		if res.RewardLo.Y[i] > res.RewardMean.Y[i]+1e-12 || res.RewardHi.Y[i] < res.RewardMean.Y[i]-1e-12 {
			t.Fatal("band does not bracket the mean")
		}
	}
	if _, err := VariabilityStudy(MethodAE, 16, 1, 5); err == nil {
		t.Error("single-run study should fail")
	}
}

func TestRegionReexports(t *testing.T) {
	if EasternPacific.LonMin != 200 || EasternPacific.LonMax != 250 ||
		EasternPacific.LatMin != -10 || EasternPacific.LatMax != 10 {
		t.Errorf("EasternPacific box %+v does not match the paper", EasternPacific)
	}
	var r Region = EasternPacific // alias compiles and assigns
	if r != EasternPacific {
		t.Error("Region alias mismatch")
	}
	var dc DataConfig = sst.Small()
	if dc.Validate() != nil {
		t.Error("DataConfig alias broken")
	}
}

func TestSearchResultJSONRoundTrip(t *testing.T) {
	p := pipeline(t)
	opts := SearchOptions{Workers: 1, MaxEvals: 3, Epochs: 1, Population: 2, Sample: 1, Seed: 8}
	res, err := Search(p, MethodRS, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/hist.json"
	if err := res.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSearchResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Results) != len(res.Results) {
		t.Fatalf("loaded %d results, want %d", len(loaded.Results), len(res.Results))
	}
	if loaded.Best.Arch.Key() != res.Best.Arch.Key() {
		t.Error("best architecture did not round trip")
	}
	if loaded.BestDesc == "" {
		t.Error("missing description after load")
	}
	if _, err := LoadSearchResult(path + ".missing"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	p := pipeline(t)
	m, _ := p.ManualLSTM(8, 1, 11)
	if _, err := m.SearchTrain(11); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.json"
	if err := m.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := p.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	// Identical predictions on the validation set.
	a := nnPredict(m, p)
	b := nnPredict(loaded, p)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("loaded model predicts differently")
		}
	}
	if loaded.Desc != m.Desc {
		t.Error("description lost")
	}
	if _, err := p.LoadModel(path + ".missing"); err == nil {
		t.Error("missing file should fail")
	}
}

func nnPredict(m *Model, p *Pipeline) []float64 {
	pred := nn.Predict(m.Graph, p.ValWin.X, 256)
	return pred.Data
}
