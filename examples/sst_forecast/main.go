// SST forecast: the full science pipeline of the paper's §IV-B on a small
// synthetic data set — train a POD-LSTM, then compare its regional RMSE and
// point probes against the CESM and HYCOM surrogate process models
// (Table I / Figs 6-7 style output).
//
//	go run ./examples/sst_forecast
package main

import (
	"fmt"
	"log"

	"podnas"
)

func main() {
	log.SetFlags(0)

	p, err := podnas.NewPipeline(podnas.SmallPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}

	model, err := p.ManualLSTM(64, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training POD-LSTM (80 epochs)...")
	if _, err := model.Posttrain(80, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test-period R2: %.3f\n\n", model.TestR2())

	// Table I style: weekly RMSE breakdown in the Eastern Pacific.
	lo, hi := p.HYCOMWindow()
	if hi-lo > 80 {
		hi = lo + 80
	}
	table, err := model.RegionalRMSE(podnas.EasternPacific, lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Eastern-Pacific RMSE (degC) over %d forecast weeks:\n", table.Weeks)
	fmt.Printf("%-10s", "lead")
	for w := 1; w <= p.Cfg.K; w++ {
		fmt.Printf("  wk%-4d", w)
	}
	fmt.Println()
	row := func(name string, xs []float64) {
		fmt.Printf("%-10s", name)
		for _, v := range xs {
			fmt.Printf("  %-6.2f", v)
		}
		fmt.Println()
	}
	row("POD-LSTM", table.Predicted)
	row("CESM", table.CESM)
	row("HYCOM", table.HYCOM)

	// Fig 6 style: one forecast field compared against every model.
	week := p.NumTrain + (p.Data.Weeks()-p.NumTrain)/2
	fc, err := model.CompareFields(week)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfield comparison for %s (global-ocean RMSE): POD-LSTM %.2f, HYCOM %.2f, CESM %.2f\n",
		p.Data.Dates[week].Format("2006-01-02"), fc.RMSEPredicted, fc.RMSEHYCOM, fc.RMSECESM)

	// Fig 7 style: a temporal probe in the Eastern Pacific.
	probe, err := model.ProbeSeries(-5, 210, lo, minInt(lo+26, hi))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprobe at (-5N, 210E), first weeks of the comparison window:\n")
	fmt.Printf("%-12s %-8s %-9s %-8s %-8s\n", "date", "truth", "POD-LSTM", "HYCOM", "CESM")
	for i := 0; i < len(probe.Weeks); i += 4 {
		w := probe.Weeks[i]
		fmt.Printf("%-12s %-8.2f %-9.2f %-8.2f %-8.2f\n",
			p.Data.Dates[w].Format("2006-01-02"), probe.Truth[i], probe.Predicted[i], probe.HYCOM[i], probe.CESM[i])
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
