// Quickstart: build the POD-LSTM pipeline on a small synthetic SST data
// set, train a single manually designed LSTM, and print its forecast skill.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"podnas"
)

func main() {
	log.SetFlags(0)

	// 1. Generate data, compute the POD basis, and window the coefficients.
	p, err := podnas.NewPipeline(podnas.SmallPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data: %d ocean points x %d weeks; %d retained POD modes capture %.1f%% of the variance\n",
		p.Data.Nh(), p.Data.Weeks(), p.Cfg.Nr, 100*p.EnergyCaptured())

	// 2. Build and train a POD-LSTM (one hidden LSTM layer of 32 units).
	model, err := p.ManualLSTM(32, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	losses, err := model.Posttrain(60, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained 60 epochs: loss %.4f -> %.4f\n", losses[0], losses[len(losses)-1])

	// 3. Score it the way the paper does (coefficient-space R²).
	fmt.Printf("validation R2 %.3f | train-period R2 %.3f | test-period R2 %.3f\n",
		model.ValR2(), model.TrainR2(), model.TestR2())

	// 4. Forecast a full temperature field 1 week ahead in the test period
	//    and compare a single point against the truth.
	week := p.NumTrain + 20
	field, err := model.ForecastField(week, 1)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := p.Data.ProbeIndex(-5, 210) // Eastern Pacific
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("week %s at (-5N, 210E): forecast %.2f degC, truth %.2f degC\n",
		p.Data.Dates[week].Format("2006-01-02"), field[idx], p.Data.Snapshots.At(idx, week))
}
