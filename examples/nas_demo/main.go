// NAS demo: run aging evolution and random search with *real* training
// evaluations on the POD-LSTM task and compare what they find — the
// laptop-scale version of the paper's Fig 3/4 experiment.
//
//	go run ./examples/nas_demo
package main

import (
	"fmt"
	"log"
	"time"

	"podnas"
)

func main() {
	log.SetFlags(0)

	p, err := podnas.NewPipeline(podnas.SmallPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search space: %d variable nodes, %d skip nodes, %d architectures\n",
		p.DefaultSpace().NumNodes, p.DefaultSpace().NumSkipVariables(), p.DefaultSpace().Cardinality())

	opts := podnas.SearchOptions{
		Workers: 2, MaxEvals: 16, Epochs: 12,
		Population: 6, Sample: 3, Seed: 3,
	}

	t0 := time.Now()
	ae, err := podnas.Search(p, podnas.MethodAE, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAE:  best validation R2 %.4f after %d evaluations (%v)\n",
		ae.Best.Reward, len(ae.Results), time.Since(t0).Round(time.Second))
	fmt.Print(ae.BestDesc)

	t0 = time.Now()
	rs, err := podnas.Search(p, podnas.MethodRS, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRS:  best validation R2 %.4f after %d evaluations (%v)\n",
		rs.Best.Reward, len(rs.Results), time.Since(t0).Round(time.Second))

	if ae.Best.Reward >= rs.Best.Reward {
		fmt.Println("\naging evolution matched or beat random search (the paper's Fig 3 ordering)")
	} else {
		fmt.Println("\nrandom search won this tiny budget — rerun with more -evals to see AE pull ahead")
	}

	// Posttrain the AE winner (paper §IV-B).
	m, err := p.BuildArch(ae.Space, ae.Best.Arch, 3)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Posttrain(60, 3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("posttrained NAS-POD-LSTM: val %.3f, train %.3f, test %.3f\n",
		m.ValR2(), m.TrainR2(), m.TestR2())
}
