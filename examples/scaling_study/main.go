// Scaling study: reproduce the paper's Table III / Fig 8 in the
// discrete-event cluster simulator — AE, RL, and RS searches on 33-512
// simulated Theta nodes for 3 hours of virtual wall time (runs in seconds
// of real time).
//
//	go run ./examples/scaling_study
package main

import (
	"fmt"
	"log"

	"podnas"
)

func main() {
	log.SetFlags(0)

	fmt.Println("simulated 3-hour NAS jobs (Theta-surrogate cluster):")
	fmt.Printf("%-6s %-7s %-12s %-12s %-10s %-11s\n", "nodes", "method", "utilization", "evaluations", "best R2", "unique>0.96")
	for _, nodes := range []int{33, 64, 128, 256, 512} {
		for _, method := range []podnas.ScalingMethod{podnas.MethodAE, podnas.MethodRL, podnas.MethodRS} {
			st, err := podnas.SimulateScaling(podnas.ScalingConfig{
				Method: method, Nodes: nodes, Seed: 7,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6d %-7s %-12.3f %-12d %-10.4f %-11d\n",
				nodes, method, st.Utilization, st.Evaluations, st.BestReward, st.UniqueHigh)
		}
	}
	fmt.Println("\nexpected shape (paper Table III): AE/RS utilization > 0.87 at every size,")
	fmt.Println("RL collapses to ~0.5 (synchronous all-reduce barriers), and AE completes")
	fmt.Println("roughly twice as many evaluations as RL.")
}
