package podnas_test

import (
	"fmt"
	"log"

	"podnas"
)

// Example_pipeline shows the end-to-end POD-LSTM workflow: generate the
// synthetic data set, train a manually designed LSTM, and score it the way
// the paper's Table II does. (Not executed during tests: training takes
// tens of seconds.)
func Example_pipeline() {
	p, err := podnas.NewPipeline(podnas.SmallPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	model, err := p.ManualLSTM(80, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := model.Posttrain(100, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("train R2 %.3f, test R2 %.3f\n", model.TrainR2(), model.TestR2())
}

// Example_search runs the paper's aging-evolution NAS with real training
// evaluations and posttrains the winner. (Not executed during tests.)
func Example_search() {
	p, err := podnas.NewPipeline(podnas.SmallPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := podnas.Search(p, podnas.MethodAE, podnas.DefaultSearchOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.BestDesc)

	best, err := p.BuildArch(res.Space, res.Best.Arch, 1)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := best.Posttrain(100, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NAS-POD-LSTM test R2: %.3f\n", best.TestR2())
}

// ExampleSimulateScaling reproduces one Table III cell in the discrete-event
// Theta simulator: a 3-hour aging-evolution search on 128 simulated nodes.
func ExampleSimulateScaling() {
	st, err := podnas.SimulateScaling(podnas.ScalingConfig{
		Method: podnas.MethodAE,
		Nodes:  128,
		Seed:   8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluations: %d, utilization: %.3f\n", st.Evaluations, st.Utilization)
	// Output: evaluations: 7672, utilization: 0.919
}
