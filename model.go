package podnas

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"podnas/internal/arch"
	"podnas/internal/metrics"
	"podnas/internal/nn"
	"podnas/internal/tensor"
)

// Model wraps a trained POD-LSTM network together with the pipeline context
// needed to score and forecast with it.
type Model struct {
	Graph *nn.Graph
	p     *Pipeline
	// Desc is a human-readable architecture description.
	Desc string
}

// ManualLSTM builds one of the paper's manually designed baselines: a plain
// stacked LSTM with `layers` hidden layers of `units` each plus the constant
// output layer (Table II: LSTM-40/80/120/200 in 1- and 5-layer variants).
func (p *Pipeline) ManualLSTM(units, layers int, seed uint64) (*Model, error) {
	g, err := nn.NewStackedLSTM(p.Cfg.Nr, p.Cfg.Nr, units, layers, tensor.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	return &Model{Graph: g, p: p, Desc: fmt.Sprintf("LSTM-%d x%d", units, layers)}, nil
}

// BuildArch instantiates a search-space architecture as an untrained model.
func (p *Pipeline) BuildArch(space arch.Space, a arch.Arch, seed uint64) (*Model, error) {
	g, err := space.Build(a, tensor.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	return &Model{Graph: g, p: p, Desc: space.Describe(a)}, nil
}

// SearchTrain trains the model with the paper's search-time budget
// (20 epochs, batch 64, Adam 1e-3) and returns the final training loss.
func (m *Model) SearchTrain(seed uint64) (float64, error) {
	cfg := nn.DefaultTrainConfig()
	cfg.Seed = seed
	return nn.Train(m.Graph, m.p.TrainWin.X, m.p.TrainWin.Y, cfg)
}

// Posttrain retrains with the paper's posttraining budget (default 100
// epochs; §IV-B) and returns the per-epoch training-loss trace (the Fig 5
// convergence curve).
func (m *Model) Posttrain(epochs int, seed uint64) ([]float64, error) {
	if epochs < 1 {
		return nil, fmt.Errorf("podnas: posttraining needs at least one epoch")
	}
	var losses []float64
	// Batch 32 rather than the paper's 64: our stride-1 windowing yields 412
	// examples versus the paper's 1,111, so halving the batch keeps the
	// number of gradient updates per epoch near the paper's regime (see
	// EXPERIMENTS.md, protocol notes).
	cfg := nn.TrainConfig{
		Epochs: epochs, BatchSize: 32, LR: 0.001, Seed: seed,
		EpochCallback: func(_ int, l float64) { losses = append(losses, l) },
	}
	if _, err := nn.Train(m.Graph, m.p.TrainWin.X, m.p.TrainWin.Y, cfg); err != nil {
		return losses, err
	}
	return losses, nil
}

// r2Unscaled scores predictions in physical (unscaled) coefficient space,
// matching the paper's metric: the dominant POD modes carry their true
// variance weight, so R² is not artificially depressed by the noisy minor
// modes the min-max scaling would otherwise equalize.
func (m *Model) r2Unscaled(xs, ys []*tensor.Tensor3) float64 {
	var pred, target []float64
	for i := range xs {
		pr := nn.Predict(m.Graph, xs[i], 256)
		m.p.Scaler.Inverse(pr)
		yt := ys[i].Clone()
		m.p.Scaler.Inverse(yt)
		pred = append(pred, pr.Data...)
		target = append(target, yt.Data...)
	}
	return metrics.R2(pred, target)
}

// ValR2 is the validation-set coefficient of determination — the search
// reward — in unscaled coefficient space.
func (m *Model) ValR2() float64 {
	return m.r2Unscaled([]*tensor.Tensor3{m.p.ValWin.X}, []*tensor.Tensor3{m.p.ValWin.Y})
}

// TrainR2 scores the model on the training+validation period windows (the
// Table II "1981–1989" column).
func (m *Model) TrainR2() float64 {
	return m.r2Unscaled(
		[]*tensor.Tensor3{m.p.TrainWin.X, m.p.ValWin.X},
		[]*tensor.Tensor3{m.p.TrainWin.Y, m.p.ValWin.Y})
}

// TestR2 scores the model on the held-out test-period windows (the Table II
// "1990–2018" column).
func (m *Model) TestR2() float64 {
	return m.r2Unscaled([]*tensor.Tensor3{m.p.TestWin.X}, []*tensor.Tensor3{m.p.TestWin.Y})
}

// ParamCount returns the model's trainable weight count.
func (m *Model) ParamCount() int { return m.Graph.ParamCount() }

// PredictCoefficients forecasts the POD coefficients for the K weeks
// starting at snapshot index t, using the true coefficients of the K weeks
// before t as input (the paper's non-autoregressive protocol: "the past is
// always known a priori"). The result is a K×Nr matrix in physical
// (unscaled) coefficient units.
func (m *Model) PredictCoefficients(t int) (*tensor.Matrix, error) {
	p := m.p
	k, nr := p.Cfg.K, p.Cfg.Nr
	if t-k < 0 || t+k > p.Data.Weeks() {
		return nil, fmt.Errorf("podnas: forecast window [%d, %d) out of range", t-k, t+k)
	}
	x := tensor.NewTensor3(1, k, nr)
	for step := 0; step < k; step++ {
		for r := 0; r < nr; r++ {
			x.Set(0, step, r, p.Coeff.At(r, t-k+step))
		}
	}
	xs := p.Scaler.Transform(x)
	pred := m.Graph.Forward(xs)
	out := pred.Clone()
	p.Scaler.Inverse(out)
	coeff := tensor.NewMatrix(k, nr)
	copy(coeff.Data, out.Data)
	return coeff, nil
}

// ForecastField reconstructs the full temperature field forecast for lead
// week `lead` (1-based) of the forecast starting at snapshot t.
func (m *Model) ForecastField(t, lead int) ([]float64, error) {
	if lead < 1 || lead > m.p.Cfg.K {
		return nil, fmt.Errorf("podnas: lead %d outside [1, %d]", lead, m.p.Cfg.K)
	}
	coeff, err := m.PredictCoefficients(t)
	if err != nil {
		return nil, err
	}
	return m.p.Basis.ReconstructSnapshot(coeff.Row(lead - 1)), nil
}

// PredictAutoregressive forecasts horizon weeks of POD coefficients
// starting at snapshot t by feeding the model's own predictions back as
// inputs, in chunks of K. The paper deliberately avoids this mode ("the
// outputs of the LSTM forecast are not reused as inputs"); it is provided
// as the natural extension, and its error growth with horizon demonstrates
// why the paper's protocol conditions on true observations. The result is
// horizon×Nr in physical coefficient units.
func (m *Model) PredictAutoregressive(t, horizon int) (*tensor.Matrix, error) {
	p := m.p
	k, nr := p.Cfg.K, p.Cfg.Nr
	if horizon < 1 {
		return nil, fmt.Errorf("podnas: nonpositive horizon %d", horizon)
	}
	if t-k < 0 || t > p.Data.Weeks() {
		return nil, fmt.Errorf("podnas: autoregressive start %d out of range", t)
	}
	// Seed window: the true (scaled) coefficients of [t-K, t).
	win := tensor.NewTensor3(1, k, nr)
	for step := 0; step < k; step++ {
		for r := 0; r < nr; r++ {
			win.Set(0, step, r, p.Coeff.At(r, t-k+step))
		}
	}
	win = p.Scaler.Transform(win)

	out := tensor.NewMatrix(horizon, nr)
	produced := 0
	for produced < horizon {
		pred := m.Graph.Forward(win) // scaled forecast of the next K weeks
		// Record the chunk (unscaled).
		chunk := pred.Clone()
		p.Scaler.Inverse(chunk)
		for step := 0; step < k && produced < horizon; step++ {
			for r := 0; r < nr; r++ {
				out.Set(produced, r, chunk.At(0, step, r))
			}
			produced++
		}
		// The prediction becomes the next input window (still scaled).
		win = pred.Clone()
	}
	return out, nil
}

// AutoregressiveRMSE compares the autoregressive forecast against the truth
// coefficients per lead week (aggregated over start weeks in [lo, hi)),
// returning one coefficient-space RMSE per lead. Used by the ablation bench
// contrasting the paper's non-autoregressive protocol with feedback
// forecasting.
func (m *Model) AutoregressiveRMSE(lo, hi, horizon int) ([]float64, error) {
	p := m.p
	if lo < p.Cfg.K {
		lo = p.Cfg.K
	}
	if hi > p.Data.Weeks()-horizon {
		hi = p.Data.Weeks() - horizon
	}
	if hi <= lo {
		return nil, fmt.Errorf("podnas: empty autoregressive range")
	}
	sums := make([]float64, horizon)
	count := 0
	for t := lo; t < hi; t++ {
		pred, err := m.PredictAutoregressive(t, horizon)
		if err != nil {
			return nil, err
		}
		for lead := 0; lead < horizon; lead++ {
			for r := 0; r < p.Cfg.Nr; r++ {
				d := pred.At(lead, r) - p.Coeff.At(r, t+lead)
				sums[lead] += d * d
			}
		}
		count++
	}
	out := make([]float64, horizon)
	for lead := range out {
		out[lead] = math.Sqrt(sums[lead] / float64(count*p.Cfg.Nr))
	}
	return out, nil
}

// modelJSON is the on-disk form of a trained model: the architecture
// specification plus every parameter tensor.
type modelJSON struct {
	Desc    string               `json:"desc"`
	Spec    nn.GraphSpec         `json:"spec"`
	Weights map[string][]float64 `json:"weights"`
}

// SaveJSON persists the trained network (architecture + weights) so a
// posttrained POD-LSTM can be reloaded without retraining. The pipeline
// (data, POD basis, scaler) is regenerated deterministically from its
// config and is not stored.
func (m *Model) SaveJSON(path string) error {
	out := modelJSON{Desc: m.Desc, Spec: m.Graph.Spec(), Weights: m.Graph.ExportWeights()}
	data, err := json.Marshal(out)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadModel reads a model written by SaveJSON and binds it to the pipeline.
// The stored input dimension must match the pipeline's mode count.
func (p *Pipeline) LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var in modelJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("podnas: bad model file %s: %w", path, err)
	}
	if in.Spec.InputDim != p.Cfg.Nr {
		return nil, fmt.Errorf("podnas: model has input dim %d, pipeline uses %d modes", in.Spec.InputDim, p.Cfg.Nr)
	}
	g, err := nn.NewGraph(in.Spec, tensor.NewRNG(1))
	if err != nil {
		return nil, fmt.Errorf("podnas: bad spec in %s: %w", path, err)
	}
	if err := g.ImportWeights(in.Weights); err != nil {
		return nil, fmt.Errorf("podnas: %s: %w", path, err)
	}
	return &Model{Graph: g, p: p, Desc: in.Desc}, nil
}
