module podnas

go 1.24
