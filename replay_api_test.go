package podnas

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"podnas/internal/obs"
	"podnas/internal/obs/replay"
)

// traceRun executes a real deterministic search with a JSONL trace and a
// live Metrics aggregator sharing one Multi recorder — the exact wiring
// `nasrun -trace -obs` uses, header included — and returns the trace path
// and the live snapshot.
func traceRun(t *testing.T, workers, evals int) (string, obs.Snapshot) {
	t.Helper()
	p := pipeline(t)
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	jl, err := obs.CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	met := obs.NewMetrics(workers)
	rec := obs.NewMulti(met, jl)
	rec.Record(obs.NewHeader("rs", 42, workers, Version))

	opts := DefaultSearchOptions()
	opts.Workers = workers
	opts.MaxEvals = evals
	opts.Seed = 42
	opts.Evaluator = hashEval{delay: time.Millisecond}
	opts.Recorder = rec
	if _, err := Search(p, MethodRS, opts); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	return path, met.Snapshot()
}

// TestReplayReproducesLiveRunExactly is the tentpole acceptance check: on a
// single-worker run the trace file is a total order of the events the live
// aggregator saw, so replaying it reproduces the live snapshot bit for bit.
func TestReplayReproducesLiveRunExactly(t *testing.T) {
	path, live := traceRun(t, 1, 20)
	a, err := replay.AnalyzeFile(path, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Read.Truncated {
		t.Fatalf("clean run read as truncated: %+v", a.Read)
	}
	if !a.Finished {
		t.Fatal("finished run replayed as unfinished")
	}
	if a.Method != "rs" || a.Seed != 42 || a.Workers != 1 || a.Version != Version {
		t.Fatalf("header mismatch: method=%q seed=%d workers=%d version=%q", a.Method, a.Seed, a.Workers, a.Version)
	}
	if !reflect.DeepEqual(a.Snapshot, live) {
		t.Errorf("replayed snapshot diverges from live:\nreplay: %+v\nlive:   %+v", a.Snapshot, live)
	}
	// The derived reward curve ends at the live moving average.
	if n := a.Reward.Len(); n == 0 || math.Abs(a.Reward.Y[n-1]-live.RewardMA) > 1e-9 {
		t.Errorf("reward curve tail %v vs live MA %v", a.Reward.Y[a.Reward.Len()-1], live.RewardMA)
	}
	// A run diffed against its own trace is clean — the CI gate's contract.
	if r := replay.Diff(a, a, replay.Thresholds{}); r.Regressed() {
		t.Errorf("self-diff regressed: %v", r.Regressions)
	}
}

// TestReplayMatchesLiveConcurrent holds the 1e-9 invariant under real
// concurrency: with two workers the file order may differ from the live
// aggregator's record order (the Multi stamps once, sinks append under
// their own locks), so order-dependent float accumulations may differ in
// the last bits — but never beyond 1e-9 — and every count is exact.
func TestReplayMatchesLiveConcurrent(t *testing.T) {
	path, live := traceRun(t, 2, 24)
	a, err := replay.AnalyzeFile(path, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := a.Snapshot
	if s.Evals != live.Evals || s.Successes != live.Successes || s.Errors != live.Errors ||
		s.InFlight != live.InFlight || s.UniqueHigh != live.UniqueHigh ||
		s.Epochs != live.Epochs || s.Checkpoints != live.Checkpoints {
		t.Errorf("replay counters diverge:\nreplay: %+v\nlive:   %+v", s, live)
	}
	if s.BestReward != live.BestReward {
		t.Errorf("best reward %v vs live %v", s.BestReward, live.BestReward)
	}
	for _, c := range []struct {
		name    string
		got, at float64
	}{
		{"reward_ma", s.RewardMA, live.RewardMA},
		{"utilization_auc", s.UtilizationAUC, live.UtilizationAUC},
		{"busy_seconds", s.BusySeconds, live.BusySeconds},
		{"elapsed_seconds", s.ElapsedSeconds, live.ElapsedSeconds},
		{"evals_per_sec", s.EvalsPerSec, live.EvalsPerSec},
	} {
		if math.Abs(c.got-c.at) > 1e-9 {
			t.Errorf("%s: replay %.12f vs live %.12f", c.name, c.got, c.at)
		}
	}
	if len(a.Slots) == 0 {
		t.Error("concurrent run produced no per-slot attribution")
	}
	var started int
	for _, sl := range a.Slots {
		started += sl.Started
	}
	if started < live.Evals {
		t.Errorf("slot-attributed starts %d < %d terminal evals", started, live.Evals)
	}
}
