// Package podnas reproduces "Recurrent Neural Network Architecture Search
// for Geophysical Emulation" (Maulik, Egele, Lusch, Balaprakash; SC 2020) as
// a self-contained Go library.
//
// The package is the public facade over the internal substrates:
//
//   - a synthetic NOAA-OISST-like data set (internal/sst),
//   - proper orthogonal decomposition via the method of snapshots
//     (internal/pod),
//   - a from-scratch LSTM/dense neural-network library with the paper's
//     DAG search space (internal/nn, internal/arch),
//   - the three NAS methods — aging evolution, PPO reinforcement learning,
//     random search (internal/search),
//   - a discrete-event simulator of the paper's Theta deployments
//     (internal/hpcsim), and
//   - classical forecasting baselines (internal/baseline).
//
// The main entry points are:
//
//	p, _ := podnas.NewPipeline(podnas.DefaultPipelineConfig())
//	model, _ := p.ManualLSTM(80, 1, 1)        // or p.BuildArch(space, arch, seed)
//	_ = p.Posttrain(model, 100, 1)            // paper §IV-B
//	fmt.Println(p.TestR2(model))              // Table II entry
//
// and, for the search experiments,
//
//	res, _ := podnas.Search(p, podnas.MethodAE, podnas.DefaultSearchOptions())
//	stats, _ := podnas.SimulateScaling(podnas.ScalingConfig{...})
package podnas

import (
	"fmt"

	"podnas/internal/arch"
	"podnas/internal/pod"
	"podnas/internal/sst"
	"podnas/internal/tensor"
	"podnas/internal/window"
)

// Version identifies this build of the library. It is stamped into trace
// headers (obs.NewHeader) so replayed runs record which writer produced
// them; it is informational and carries no compatibility promise — the
// trace format itself is versioned separately by obs.SchemaVersion.
const Version = "0.5.0"

// PipelineConfig describes the full data → POD → windows preparation.
type PipelineConfig struct {
	// Data selects the synthetic SST configuration.
	Data sst.Config
	// Nr is the number of retained POD modes (paper: 5, ~92% of variance).
	Nr int
	// K is the sequence window: K weeks in, K weeks out (paper: 8).
	K int
	// TrainFrac is the train/validation example split (paper: 0.8).
	TrainFrac float64
	// ScaleBound is the min-max scaling range half-width. Targets must stay
	// inside the LSTM's (-1, 1) output range with enough headroom that
	// test-period values drifting beyond the training range (the warming
	// trend) remain reachable without saturating the gates.
	ScaleBound float64
	// Seed drives the validation split.
	Seed uint64
}

// DefaultPipelineConfig returns the paper's configuration on the standard
// (two-degree, full-calendar) synthetic data set.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{Data: sst.Default(), Nr: 5, K: 8, TrainFrac: 0.8, ScaleBound: 0.6, Seed: 42}
}

// SmallPipelineConfig returns a reduced configuration for tests and quick
// demos (smaller grid, shorter record).
func SmallPipelineConfig() PipelineConfig {
	return PipelineConfig{Data: sst.Small(), Nr: 5, K: 8, TrainFrac: 0.8, ScaleBound: 0.6, Seed: 42}
}

// Pipeline holds the prepared data artifacts shared by every experiment.
type Pipeline struct {
	Cfg   PipelineConfig
	Data  *sst.Dataset
	Basis *pod.Basis
	// Coeff is the Nr×Weeks coefficient matrix of every snapshot projected
	// onto the training POD basis.
	Coeff *tensor.Matrix
	// NumTrain is the number of training-period snapshots (427 on the full
	// calendar).
	NumTrain int
	// TrainWin and ValWin are the scaled sequence-to-sequence example sets
	// used for architecture evaluation and training.
	TrainWin, ValWin *window.Dataset
	// TestWin is the scaled windowed test set (1990–2018 on the full
	// calendar), built strictly from test-period coefficients.
	TestWin *window.Dataset
	// Scaler maps coefficients to the network's working range; fitted on
	// training inputs only.
	Scaler *window.MinMaxScaler
}

// NewPipeline generates the data set, computes the POD basis on the
// training snapshots, projects all snapshots, and builds the scaled
// windowed example sets.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if cfg.Nr < 1 {
		return nil, fmt.Errorf("podnas: need at least one POD mode")
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("podnas: need positive window K")
	}
	data, err := sst.Generate(cfg.Data)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{Cfg: cfg, Data: data, NumTrain: data.NumTrain()}

	basis, err := pod.Compute(data.TrainSnapshots(), cfg.Nr)
	if err != nil {
		return nil, fmt.Errorf("podnas: POD failed: %w", err)
	}
	p.Basis = basis
	p.Coeff = basis.Project(data.Snapshots)

	// Windowed examples over the training period only.
	trainCoeff := tensor.NewMatrix(cfg.Nr, p.NumTrain)
	for r := 0; r < cfg.Nr; r++ {
		copy(trainCoeff.Row(r), p.Coeff.Row(r)[:p.NumTrain])
	}
	all, err := window.Build(trainCoeff, cfg.K)
	if err != nil {
		return nil, fmt.Errorf("podnas: windowing failed: %w", err)
	}
	rawTrain, rawVal, err := all.Split(cfg.TrainFrac, cfg.Seed)
	if err != nil {
		return nil, err
	}
	p.Scaler = window.FitMinMax(rawTrain.X, cfg.ScaleBound)
	p.TrainWin = &window.Dataset{X: p.Scaler.Transform(rawTrain.X), Y: p.Scaler.Transform(rawTrain.Y), K: cfg.K, Nr: cfg.Nr}
	p.ValWin = &window.Dataset{X: p.Scaler.Transform(rawVal.X), Y: p.Scaler.Transform(rawVal.Y), K: cfg.K, Nr: cfg.Nr}

	// Windowed test examples from the held-out period.
	testCoeff := tensor.NewMatrix(cfg.Nr, data.Weeks()-p.NumTrain)
	for r := 0; r < cfg.Nr; r++ {
		copy(testCoeff.Row(r), p.Coeff.Row(r)[p.NumTrain:])
	}
	rawTest, err := window.Build(testCoeff, cfg.K)
	if err != nil {
		return nil, fmt.Errorf("podnas: test record too short: %w", err)
	}
	p.TestWin = &window.Dataset{X: p.Scaler.Transform(rawTest.X), Y: p.Scaler.Transform(rawTest.Y), K: cfg.K, Nr: cfg.Nr}
	return p, nil
}

// DefaultSpace returns the paper's architecture search space bound to the
// pipeline's mode count.
func (p *Pipeline) DefaultSpace() arch.Space {
	s := arch.Default()
	s.InputDim = p.Cfg.Nr
	s.OutputDim = p.Cfg.Nr
	return s
}

// EnergyCaptured returns the variance fraction captured by the retained POD
// modes (the paper's ~92% justification for Nr = 5).
func (p *Pipeline) EnergyCaptured() float64 { return p.Basis.EnergyFraction(p.Cfg.Nr) }

// Region is a latitude/longitude evaluation box (re-exported so callers
// outside the module can target custom regions).
type Region = sst.Region

// EasternPacific is the paper's Table I evaluation box (-10..+10 latitude,
// 200..250 longitude).
var EasternPacific = sst.EasternPacific

// DataConfig is the synthetic data set configuration (re-exported).
type DataConfig = sst.Config
