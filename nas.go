package podnas

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"podnas/internal/arch"
	"podnas/internal/hpcsim"
	"podnas/internal/metrics"
	"podnas/internal/nn"
	"podnas/internal/obs"
	"podnas/internal/obs/span"
	"podnas/internal/search"
)

// Method selects a search algorithm for Search: MethodAE (aging evolution),
// MethodRS (random search), or MethodRL (synchronous multi-agent PPO). It is
// the same type the scaling simulator uses, so a method name moves between
// real searches and simulated ones unchanged.
type Method = hpcsim.Method

// ParseMethod maps a case-insensitive method name ("ae", "RS", "rl") to its
// Method, or fails with ErrBadMethod.
func ParseMethod(name string) (Method, error) {
	switch {
	case strings.EqualFold(name, string(MethodAE)):
		return MethodAE, nil
	case strings.EqualFold(name, string(MethodRS)):
		return MethodRS, nil
	case strings.EqualFold(name, string(MethodRL)):
		return MethodRL, nil
	}
	return "", fmt.Errorf("podnas: %w: %q (want AE, RS, or RL)", ErrBadMethod, name)
}

// SearchOptions configures a real-evaluation NAS run: every proposal is
// actually trained on the pipeline's windowed data (the paper's evaluation,
// at a laptop-scale budget).
type SearchOptions struct {
	// Workers is the number of concurrent evaluations (the in-process
	// analogue of Theta worker nodes).
	Workers int
	// MaxEvals bounds the number of architectures trained.
	MaxEvals int
	// Deadline optionally bounds wall-clock time (0 = none). It is enforced
	// by context cancellation: in-flight trainings are interrupted at the
	// next epoch boundary, not waited out.
	Deadline time.Duration
	// Epochs is the per-evaluation training budget (paper: 20).
	Epochs int
	// Population and Sample are the AE hyperparameters (paper: 100/10).
	Population, Sample int
	// Seed drives everything.
	Seed uint64
	// Ctx, when non-nil, allows external cancellation (e.g. SIGINT): the
	// search stops gracefully and returns the completed evaluations.
	Ctx context.Context
	// EvalTimeout bounds each single evaluation (0 = none); a timed-out
	// training is recorded as an errored result.
	EvalTimeout time.Duration
	// Retries is the per-evaluation retry budget for transient failures
	// (errors wrapping search.ErrTransient).
	Retries int
	// CheckpointPath, when non-empty, periodically persists the searcher
	// state and completed results so a killed run can be resumed.
	CheckpointPath string
	// CheckpointEvery is the save cadence in completed evaluations
	// (default 10). A final checkpoint is always written on exit.
	CheckpointEvery int
	// Resume restores a previous run from a checkpoint written via
	// CheckpointPath; completed evaluations count toward MaxEvals.
	Resume *search.Checkpoint
	// Evaluator, when non-nil, replaces the default in-process training
	// evaluator — e.g. a process-isolated worker pool (internal/worker)
	// whose subprocesses run Pipeline.NewEvaluator. The override must score
	// architectures from this pipeline's DefaultSpace; Epochs is ignored
	// because the override owns its training budget.
	Evaluator search.Evaluator
	// Agents, WorkersPerAgent, and Batches shape the MethodRL run (paper:
	// 11 agents). The RL evaluation count is Agents×WorkersPerAgent×Batches;
	// MaxEvals does not apply. Zero values take the DefaultSearchOptions
	// defaults; the async methods ignore all three.
	Agents          int
	WorkersPerAgent int
	Batches         int
	// Recorder, when non-nil, receives the live observability stream:
	// evaluation start/finish/error/retry, per-epoch training ticks,
	// PPO round barriers, and checkpoint writes. Aggregate it with
	// obs.NewMetrics, buffer it with obs.NewRing, or stream it to disk with
	// obs.CreateJSONL (nasrun's -trace). A nil Recorder costs nothing.
	Recorder obs.Recorder
	// Trace is the root span context for this run (zero = span tracing off).
	// With a Recorder and a valid Trace the runner emits a span tree —
	// search → eval → (train → epoch) — into the Recorder, and the planted
	// per-eval contexts let a worker pool stitch its dispatch/rpc and remote
	// train spans into the same tree (see internal/obs/span).
	Trace span.Context
}

// DefaultSearchOptions returns a budget suitable for a single machine: a
// reduced evaluation count with the paper's training hyperparameters.
func DefaultSearchOptions() SearchOptions {
	return SearchOptions{
		Workers: 2, MaxEvals: 24, Epochs: 20, Population: 12, Sample: 4, Seed: 1,
		Agents: 2, WorkersPerAgent: 2, Batches: 3,
	}
}

// validate fills the zero RL-shape fields from DefaultSearchOptions and
// rejects options the given method cannot run with.
func (opts *SearchOptions) validate(method Method) error {
	def := DefaultSearchOptions()
	if opts.Agents == 0 {
		opts.Agents = def.Agents
	}
	if opts.WorkersPerAgent == 0 {
		opts.WorkersPerAgent = def.WorkersPerAgent
	}
	if opts.Batches == 0 {
		opts.Batches = def.Batches
	}
	if method == MethodRL {
		if opts.Agents < 1 || opts.WorkersPerAgent < 1 || opts.Batches < 1 {
			return fmt.Errorf("podnas: %w: RL shape %d agents × %d workers × %d batches", ErrBadOptions, opts.Agents, opts.WorkersPerAgent, opts.Batches)
		}
		return nil
	}
	if opts.Workers < 1 {
		return fmt.Errorf("podnas: %w: Workers must be at least 1, got %d", ErrBadOptions, opts.Workers)
	}
	if opts.MaxEvals < 1 {
		return fmt.Errorf("podnas: %w: MaxEvals must be at least 1, got %d", ErrBadOptions, opts.MaxEvals)
	}
	return nil
}

// LoadCheckpoint reads a search checkpoint written via
// SearchOptions.CheckpointPath, for use as SearchOptions.Resume. The
// checkpoint records which method wrote it; resuming into a different
// method fails with a kind-mismatch error.
func LoadCheckpoint(path string) (*search.Checkpoint, error) {
	return search.LoadCheckpoint(path)
}

// SearchResult is the outcome of a real-evaluation search.
type SearchResult struct {
	Results []search.Result
	Best    search.Result
	// BestDesc is the human-readable best architecture (the Fig 4 view).
	BestDesc string
	Space    arch.Space
}

func (p *Pipeline) evaluator(opts SearchOptions) (search.Evaluator, arch.Space, error) {
	space := p.DefaultSpace()
	if opts.Evaluator != nil {
		return opts.Evaluator, space, nil
	}
	ev, err := p.NewEvaluator(opts.Epochs)
	return ev, space, err
}

// NewEvaluator builds the in-process training evaluator the search entry
// points use by default: train on the pipeline's windowed data for epochs
// (0 = the paper's default) and score by validation R². It is also what an
// isolated worker process serves and what a degraded worker pool falls back
// to, so pooled and in-process runs score identically.
func (p *Pipeline) NewEvaluator(epochs int) (search.Evaluator, error) {
	cfg := nn.DefaultTrainConfig()
	if epochs > 0 {
		cfg.Epochs = epochs
	}
	ev, err := search.NewTrainingEvaluator(p.DefaultSpace(), p.TrainWin, p.ValWin, cfg)
	if err != nil {
		return nil, err
	}
	ev.Scaler = p.Scaler
	return ev, nil
}

// searchCtx resolves the external context and the checkpointer from opts.
func (opts SearchOptions) searchCtx() (context.Context, *search.Checkpointer) {
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	var ck *search.Checkpointer
	if opts.CheckpointPath != "" {
		ck = &search.Checkpointer{Path: opts.CheckpointPath, Every: opts.CheckpointEvery}
	}
	return ctx, ck
}

// finishSearch turns raw runner results into a SearchResult, mapping the
// no-successful-evaluation outcomes onto the package sentinels.
func finishSearch(ctx context.Context, res []search.Result, space arch.Space) (*SearchResult, error) {
	best, ok := search.Best(res)
	if !ok {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("podnas: %w before any evaluation succeeded: %v", ErrInterrupted, ctx.Err())
		}
		return nil, fmt.Errorf("podnas: %w", ErrBudgetExhausted)
	}
	return &SearchResult{Results: res, Best: best, BestDesc: space.Describe(best.Arch), Space: space}, nil
}

// Search runs one architecture search over p's data with the given method:
//
//	MethodAE — asynchronous aging evolution (the paper's best performer)
//	MethodRS — asynchronous random search (the paper's baseline)
//	MethodRL — synchronous multi-agent PPO
//
// Every proposal is really trained (opts.Epochs) and scored by validation
// R². The async methods evaluate until opts.MaxEvals; RL evaluates
// opts.Agents × opts.WorkersPerAgent × opts.Batches architectures in
// synchronized rounds. Unknown methods fail with ErrBadMethod, impossible
// budgets with ErrBadOptions, and a run that ends without a single
// successful evaluation with ErrBudgetExhausted (or ErrInterrupted when the
// context was cancelled first) — all matchable with errors.Is.
func Search(p *Pipeline, method Method, opts SearchOptions) (*SearchResult, error) {
	if err := opts.validate(method); err != nil {
		return nil, err
	}
	ev, space, err := p.evaluator(opts)
	if err != nil {
		return nil, err
	}
	ctx, ck := opts.searchCtx()
	switch method {
	case MethodAE, MethodRS:
		var s search.Searcher
		if method == MethodAE {
			s, err = search.NewAgingEvolution(space, opts.Population, opts.Sample, opts.Seed)
		} else {
			s, err = search.NewRandomSearch(space, opts.Seed)
		}
		if err != nil {
			return nil, err
		}
		res, err := search.RunAsyncCtx(ctx, s, ev, search.RunAsyncOptions{
			Workers: opts.Workers, MaxEvals: opts.MaxEvals, Deadline: opts.Deadline, Seed: opts.Seed,
			EvalTimeout: opts.EvalTimeout, Retries: opts.Retries,
			Checkpoint: ck, Resume: opts.Resume, Recorder: opts.Recorder, Trace: opts.Trace,
		})
		if err != nil {
			return nil, err
		}
		return finishSearch(ctx, res, space)
	case MethodRL:
		res, err := search.RunRLCtx(ctx, space, ev, search.RunRLOptions{
			Agents: opts.Agents, WorkersPerAgent: opts.WorkersPerAgent, Batches: opts.Batches,
			Seed: opts.Seed, EvalTimeout: opts.EvalTimeout, Retries: opts.Retries,
			Checkpoint: ck, Resume: opts.Resume, Recorder: opts.Recorder, Trace: opts.Trace,
		})
		if err != nil {
			return nil, err
		}
		return finishSearch(ctx, res, space)
	}
	return nil, fmt.Errorf("podnas: %w: %q (want %s, %s, or %s)", ErrBadMethod, method, MethodAE, MethodRS, MethodRL)
}

// ScalingConfig configures a simulated Theta job (Table III, Figs 3/8/9).
type ScalingConfig = hpcsim.Config

// ScalingStats is the simulated job outcome.
type ScalingStats = hpcsim.RunStats

// ScalingMethod selects the simulated search method ("AE", "RL", "RS").
type ScalingMethod = hpcsim.Method

// Method names for SimulateScaling.
const (
	MethodAE = hpcsim.MethodAE
	MethodRL = hpcsim.MethodRL
	MethodRS = hpcsim.MethodRS
)

// SimulateScaling runs one discrete-event cluster simulation. Unset fields
// get the paper's defaults (3 h wall time, 11 agents, population 100,
// sample 10, high-performance threshold 0.96). The Space field may be left
// zero-valued to use the paper's search space.
func SimulateScaling(cfg ScalingConfig) (*ScalingStats, error) {
	if cfg.Space.NumNodes == 0 {
		cfg.Space = arch.Default()
	}
	return hpcsim.Run(cfg)
}

// VariabilityResult summarizes repeated simulated searches (paper Fig 9):
// pointwise mean ± 2σ bands of the moving-average reward and the busy-node
// fraction over wall-clock time.
type VariabilityResult struct {
	Method             ScalingMethod
	Runs               int
	RewardMean         *metrics.Curve
	RewardLo, RewardHi *metrics.Curve // mean ± 2σ
	UtilMean           *metrics.Curve
	UtilLo, UtilHi     *metrics.Curve
	FinalRewards       []float64
	Utilizations       []float64
}

// VariabilityStudy runs `runs` simulated searches with distinct seeds and
// aggregates their trajectories onto a common time grid. The paper's Fig 9
// uses 10 runs of AE and RL at 128 nodes.
func VariabilityStudy(method ScalingMethod, nodes, runs int, seed uint64) (*VariabilityResult, error) {
	if runs < 2 {
		return nil, fmt.Errorf("podnas: variability study needs at least 2 runs")
	}
	var rewardCurves, utilCurves []*metrics.Curve
	out := &VariabilityResult{Method: method, Runs: runs}
	const samples = 90
	for k := 0; k < runs; k++ {
		st, err := SimulateScaling(ScalingConfig{Method: method, Nodes: nodes, Seed: seed + uint64(k)*7919})
		if err != nil {
			return nil, err
		}
		wallMin := st.Config.WallTime / 60
		rewardCurves = append(rewardCurves, st.RewardCurve.Resample(0, wallMin, samples))
		utilCurves = append(utilCurves, st.UtilCurve.Resample(0, wallMin, samples))
		out.FinalRewards = append(out.FinalRewards, st.RewardCurve.Y[len(st.RewardCurve.Y)-1])
		out.Utilizations = append(out.Utilizations, st.Utilization)
	}
	out.RewardMean, out.RewardLo, out.RewardHi = metrics.EnsembleBand(rewardCurves, 2)
	out.UtilMean, out.UtilLo, out.UtilHi = metrics.EnsembleBand(utilCurves, 2)
	return out, nil
}

// searchResultJSON is the serialized form of a SearchResult (architectures
// as canonical keys, rewards, and timing).
type searchResultJSON struct {
	Space   arch.Space `json:"space"`
	Results []struct {
		Index   int     `json:"index"`
		Arch    string  `json:"arch"`
		Reward  float64 `json:"reward"`
		Seconds float64 `json:"seconds"`
		Err     string  `json:"err,omitempty"`
	} `json:"results"`
	BestArch string  `json:"best_arch"`
	BestR2   float64 `json:"best_r2"`
}

// SaveJSON writes the search history to path, so discovered architectures
// can be reloaded (see LoadSearchResult and nasrun's -arch flag).
func (r *SearchResult) SaveJSON(path string) error {
	out := searchResultJSON{Space: r.Space, BestArch: r.Best.Arch.Key(), BestR2: r.Best.Reward}
	for _, res := range r.Results {
		entry := struct {
			Index   int     `json:"index"`
			Arch    string  `json:"arch"`
			Reward  float64 `json:"reward"`
			Seconds float64 `json:"seconds"`
			Err     string  `json:"err,omitempty"`
		}{Index: res.Index, Arch: res.Arch.Key(), Reward: res.Reward, Seconds: res.Elapsed.Seconds()}
		if res.Err != nil {
			entry.Err = res.Err.Error()
		}
		out.Results = append(out.Results, entry)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadSearchResult reads a history written by SaveJSON. Errors stored with
// results are restored as opaque error strings.
func LoadSearchResult(path string) (*SearchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var in searchResultJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("podnas: bad search history %s: %w", path, err)
	}
	if err := in.Space.Validate(); err != nil {
		return nil, fmt.Errorf("podnas: bad space in %s: %w", path, err)
	}
	out := &SearchResult{Space: in.Space}
	for _, e := range in.Results {
		a, err := in.Space.ParseArch(e.Arch)
		if err != nil {
			return nil, fmt.Errorf("podnas: bad architecture in %s: %w", path, err)
		}
		res := search.Result{Index: e.Index, Arch: a, Reward: e.Reward, Elapsed: time.Duration(e.Seconds * float64(time.Second))}
		if e.Err != "" {
			res.Err = fmt.Errorf("%s", e.Err)
		}
		out.Results = append(out.Results, res)
	}
	best, err := in.Space.ParseArch(in.BestArch)
	if err != nil {
		return nil, fmt.Errorf("podnas: bad best architecture in %s: %w", path, err)
	}
	out.Best = search.Result{Arch: best, Reward: in.BestR2}
	out.BestDesc = in.Space.Describe(best)
	return out, nil
}
