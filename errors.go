package podnas

import (
	"errors"

	"podnas/internal/jobs"
	"podnas/internal/search"
)

// Sentinel errors returned by the search entry points. Callers branch on
// them with errors.Is; nasrun maps each to a distinct exit code so shell
// scripts and schedulers can tell a corrupted checkpoint from an interrupt.
var (
	// ErrBadMethod reports a search method name that is not AE, RS, or RL.
	ErrBadMethod = errors.New("unknown search method")
	// ErrBadOptions reports SearchOptions that fail validation (negative
	// budgets, missing pipeline, ...).
	ErrBadOptions = errors.New("invalid search options")
	// ErrBadCheckpoint reports a checkpoint that cannot be restored: a
	// truncated or corrupted file, a schema-version mismatch, or state from
	// a different method or agent count.
	ErrBadCheckpoint = search.ErrBadCheckpoint
	// ErrBudgetExhausted reports a search that spent its full evaluation
	// budget without a single successful evaluation.
	ErrBudgetExhausted = errors.New("evaluation budget exhausted without a successful evaluation")
	// ErrInterrupted reports a search cancelled (context/deadline) before
	// any evaluation succeeded.
	ErrInterrupted = errors.New("search interrupted")
	// ErrUnavailable reports a nasd daemon refusing work: the admission
	// queue is full, a drain is in progress, or another daemon instance
	// already owns the state directory. Clients should back off and retry
	// (the HTTP API sends Retry-After guidance).
	ErrUnavailable = jobs.ErrUnavailable
)
